"""Johnson-counter algebra: encoding, validity, k-ary transitions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import johnson as J


class TestEncodeDecode:
    def test_paper_sequence_radix10(self):
        """The exact state walk of Sec. 2.4 (LSB-first strings)."""
        from repro.util import bitstring
        expected = ["00000", "10000", "11000", "11100", "11110", "11111",
                    "01111", "00111", "00011", "00001"]
        for value, want in enumerate(expected):
            assert bitstring(J.encode(value, 5)) == want

    def test_roundtrip_all_radices(self):
        for n in range(1, 12):
            for v in range(2 * n):
                assert J.decode(J.encode(v, n)) == v

    def test_wraparound_encoding(self):
        assert J.decode(J.encode(13, 5)) == 3

    def test_decode_rejects_invalid_state(self):
        with pytest.raises(ValueError):
            J.decode([1, 0, 1, 0, 0])

    def test_decode_lenient_accepts_invalid_state(self):
        assert J.decode([1, 0, 1, 0, 0], strict=False) == 2

    def test_validity_counts(self):
        for n in (1, 3, 5, 8):
            valid = sum(
                J.is_valid(np.array([(i >> b) & 1 for b in range(n)],
                                    dtype=np.uint8))
                for i in range(2 ** n))
            assert valid == 2 * n

    def test_lanes_roundtrip(self):
        values = np.array([0, 3, 7, 9, 5])
        lanes = J.encode_lanes(values, 5)
        assert lanes.shape == (5, 5)
        assert (J.decode_lanes(lanes) == values).all()


class TestTransitions:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7])
    def test_all_steps_exhaustive(self, n):
        """Every (state, k) pair including decrements."""
        for v in range(2 * n):
            lanes = J.encode(v, n)[:, None]
            for k in range(-(2 * n - 1), 2 * n):
                if k == 0:
                    continue
                out = J.step(lanes, k)
                want, _ = J.successor_value(v, k, n)
                assert J.decode(out[:, 0]) == want, (n, v, k)

    def test_step_zero_is_identity(self):
        lanes = J.encode_lanes([1, 4, 7], 4)
        assert (J.step(lanes, 0) == lanes).all()

    def test_mask_zero_lane_untouched(self):
        lanes = J.encode_lanes([2, 2, 2], 3)
        mask = np.array([1, 0, 1], dtype=np.uint8)
        out = J.step(lanes, 3, mask)
        assert J.decode(out[:, 0]) == 5
        assert J.decode(out[:, 1]) == 2
        assert J.decode(out[:, 2]) == 5

    def test_complement_property(self):
        """state(v + n) == ~state(v) -- the twisted-ring identity."""
        for n in (2, 5, 6):
            for v in range(2 * n):
                assert (J.encode(v + n, n) == 1 - J.encode(v, n)).all()

    def test_pattern_structure_unit(self):
        p = J.transition_pattern(5, 1)
        assert len(p.assignments) == 5
        assert p.cycle_saves == (4,)          # the MSB save of Fig. 6b
        inverted = [a for a in p.assignments if a.inverted]
        assert len(inverted) == 1 and inverted[0].dst == 0

    def test_pattern_cycle_saves_gcd(self):
        # gcd(6, 2) = 2 cycles -> two scratch saves.
        p = J.transition_pattern(6, 2)
        assert len(p.cycle_saves) == 2

    def test_pattern_k_equals_n_complements(self):
        p = J.transition_pattern(4, 4)
        assert all(a.inverted and a.dst == a.src for a in p.assignments)
        assert p.cycle_saves == ()

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            J.encode(0, 0)


class TestOverflowFlags:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_overflow_matches_arithmetic(self, n):
        for v in range(2 * n):
            old = J.encode(v, n)
            for k in range(1, 2 * n):
                new = J.step(old[:, None], k)[:, 0]
                want, carry = J.successor_value(v, k, n)
                flag = J.overflow_after_step(
                    np.array([old[-1]]), np.array([new[-1]]), k, n)
                assert bool(flag[0]) == carry, (n, v, k)

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_underflow_matches_arithmetic(self, n):
        for v in range(2 * n):
            old = J.encode(v, n)
            for k in range(1, 2 * n):
                new = J.step(old[:, None], -k)[:, 0]
                want, borrow = J.successor_value(v, -k, n)
                flag = J.underflow_after_step(
                    np.array([old[-1]]), np.array([new[-1]]), k, n)
                assert bool(flag[0]) == borrow, (n, v, k)

    def test_masked_lane_never_flags(self):
        n = 5
        old = J.encode(9, n)
        mask = np.array([0], dtype=np.uint8)
        new = J.step(old[:, None], 9, mask)[:, 0]
        flag = J.overflow_after_step(np.array([old[-1]]),
                                     np.array([new[-1]]), 9, n, mask)
        assert flag[0] == 0

    def test_range_validation(self):
        with pytest.raises(ValueError):
            J.overflow_after_step(np.array([1]), np.array([0]), 10, 5)


@given(n=st.integers(1, 10), v=st.integers(0, 100), k=st.integers(-50, 50))
@settings(max_examples=300, deadline=None)
def test_property_step_matches_modular_arithmetic(n, v, k):
    v = v % (2 * n)
    lanes = J.encode(v, n)[:, None]
    out = J.step(lanes, k)
    assert J.decode(out[:, 0]) == (v + k) % (2 * n)


@given(n=st.integers(1, 8),
       values=st.lists(st.integers(0, 15), min_size=1, max_size=8),
       k=st.integers(1, 15))
@settings(max_examples=200, deadline=None)
def test_property_lane_independence(n, values, k):
    """Each lane advances independently of its neighbors."""
    values = [v % (2 * n) for v in values]
    k = 1 + k % (2 * n - 1) if 2 * n > 2 else 1
    lanes = J.encode_lanes(values, n)
    out = J.step(lanes, k)
    for i, v in enumerate(values):
        assert J.decode(out[:, i]) == (v + k) % (2 * n)
