"""Analytics kernels: histogram, group-by, radix sort on the engine.

Everything here pins the subsystem's core contract: key streams lowered
to masked counter increments produce *bit-exact* NumPy-golden results on
both backends, stay exact through park/unpark round trips and the
fused/interpreted differential, serve through the registry/server
plan-kind seam, and degrade gracefully (approximate, accounted, never
crashing) under the seeded fault grid.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.analytics import (GroupByPlan, HistogramPlan,
                                  histogram_fault_trial, radix_sort)
from repro.device import Device
from repro.isa.trace import fusion_disabled, megatrace_disabled
from repro.reliability import Campaign, FaultPoint
from repro.serve import Server, UnsupportedPlanKindError


def _bincount(keys, n_buckets):
    return np.bincount(np.asarray(keys, dtype=np.int64),
                       minlength=n_buckets)


def _groupby_golden(recs, n_groups, agg):
    out = np.zeros(n_groups, dtype=np.int64)
    if agg == "count":
        np.add.at(out, recs[:, 0], 1)
    else:
        np.add.at(out, recs[:, 0], recs[:, 1])
    return out


class TestHistogram:
    @pytest.mark.parametrize("backend", ["fast", "bit"])
    def test_matches_bincount(self, rng, backend):
        keys = rng.integers(0, 6, 40)
        with Device(backend=backend) as dev:
            plan = dev.plan_histogram(n_buckets=6)
            assert (plan(keys) == _bincount(keys, 6)).all()

    def test_batch_matches_per_query(self, rng):
        keys = rng.integers(0, 8, (5, 32))
        with Device() as dev:
            plan = dev.plan_histogram(n_buckets=8, query_len=32)
            counts = plan.run_many(keys)
            golden = np.stack([_bincount(q, 8) for q in keys])
            assert (counts == golden).all()
            assert plan.stats.queries == 5

    def test_edges_mode_matches_np_histogram(self, rng):
        edges = np.array([0.0, 1.5, 2.5, 7.0, 9.0])
        xs = rng.uniform(0.0, 9.0, 64)
        xs[:3] = [9.0, 0.0, 2.5]            # hit the boundary conventions
        with Device() as dev:
            plan = dev.plan_histogram(edges=edges)
            golden, _ = np.histogram(xs, bins=edges)
            assert (plan(xs) == golden).all()

    def test_repeated_queries_ride_megatraces(self, rng):
        keys = rng.integers(0, 4, 24)
        with Device() as dev:
            plan = dev.plan_histogram(n_buckets=4, x_budget=keys.size)
            for _ in range(8):
                assert (plan(keys) == _bincount(keys, 4)).all()
            stats = plan.stats
            assert stats.megatrace_compiles >= 1
            assert stats.megatrace_replays >= 4

    def test_validation(self, rng):
        with Device() as dev:
            plan = dev.plan_histogram(n_buckets=4, query_len=8)
            with pytest.raises(ValueError, match="exactly 8"):
                plan(np.zeros(5, dtype=np.int64))
            with pytest.raises(ValueError, match="lie in"):
                plan(np.full(8, 99))
            with pytest.raises(ValueError, match="1-D"):
                plan(np.zeros((2, 8), dtype=np.int64))
            with pytest.raises(ValueError):
                dev.plan_histogram(edges=np.array([3.0, 1.0]))
            with pytest.raises(ValueError):
                dev.plan_histogram()

    @given(seed=st.integers(0, 999), n_buckets=st.integers(1, 12),
           n=st.integers(0, 60))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_bincount(self, seed, n_buckets, n):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, n_buckets, n)
        with Device() as dev:
            plan = dev.plan_histogram(n_buckets=n_buckets)
            assert (plan(keys) == _bincount(keys, n_buckets)).all()


class TestGroupBy:
    @pytest.mark.parametrize("backend", ["fast", "bit"])
    @pytest.mark.parametrize("agg", ["count", "sum"])
    def test_matches_dict_reduce(self, rng, backend, agg):
        recs = np.stack([rng.integers(0, 4, 24),
                         rng.integers(-9, 10, 24)], axis=1)
        with Device(backend=backend) as dev:
            plan = dev.plan_groupby(4, agg=agg)
            assert (plan(recs) == _groupby_golden(recs, 4, agg)).all()

    def test_batch(self, rng):
        recs = np.stack([np.stack([rng.integers(0, 3, 16),
                                   rng.integers(-5, 6, 16)], axis=1)
                         for _ in range(4)])
        with Device() as dev:
            plan = dev.plan_groupby(3, agg="sum", query_len=16)
            sums = plan.run_many(recs)
            for q in range(4):
                assert (sums[q] ==
                        _groupby_golden(recs[q], 3, "sum")).all()

    def test_validation(self, rng):
        with Device() as dev:
            with pytest.raises(ValueError, match="agg"):
                dev.plan_groupby(4, agg="median")
            plan = dev.plan_groupby(4, agg="sum")
            with pytest.raises(ValueError, match="lie in"):
                plan(np.array([[9, 1]]))
            with pytest.raises(ValueError):
                plan(np.zeros((3,), dtype=np.int64))

    @given(seed=st.integers(0, 999), n_groups=st.integers(1, 6),
           n=st.integers(0, 40), agg=st.sampled_from(["count", "sum"]))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_dict_reduce(self, seed, n_groups, n, agg):
        rng = np.random.default_rng(seed)
        recs = np.stack([rng.integers(0, n_groups, n),
                         rng.integers(-20, 21, n)], axis=1)
        with Device() as dev:
            plan = dev.plan_groupby(n_groups, agg=agg)
            golden = _groupby_golden(recs, n_groups, agg)
            assert (plan(recs) == golden).all()


class TestRadixSort:
    @pytest.mark.parametrize("backend", ["fast", "bit"])
    def test_matches_np_sort(self, rng, backend):
        keys = rng.integers(0, 1 << 8, 64)
        with Device(backend=backend) as dev:
            assert (radix_sort(keys, device=dev) == np.sort(keys)).all()

    def test_stability_by_tagged_payload(self, rng):
        keys = rng.integers(0, 4, 48)       # heavy duplication
        out, tags = radix_sort(keys, payload=np.arange(keys.size))
        assert (out == np.sort(keys)).all()
        assert (keys[tags] == out).all()
        for k in np.unique(out):            # equal keys keep input order
            group = tags[out == k]
            assert (np.diff(group) > 0).all()

    def test_trivial_and_edge_inputs(self):
        assert radix_sort(np.array([], dtype=np.int64)).size == 0
        assert (radix_sort(np.array([7])) == [7]).all()
        assert (radix_sort(np.zeros(5, dtype=np.int64)) == 0).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            radix_sort(np.array([3, -1]))
        with pytest.raises(ValueError, match="radix_bits"):
            radix_sort(np.array([1]), radix_bits=0)
        with pytest.raises(ValueError, match="1-D"):
            radix_sort(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="payload"):
            radix_sort(np.array([1, 2]), payload=np.arange(3))

    def test_caller_device_stays_open(self, rng):
        keys = rng.integers(0, 16, 32)
        with Device() as dev:
            radix_sort(keys, device=dev)
            plan = dev.plan_histogram(n_buckets=4)   # device still usable
            assert (plan(np.array([0, 1, 1])) == [1, 2, 0, 0]).all()

    @given(seed=st.integers(0, 999), n=st.integers(0, 80),
           radix_bits=st.integers(1, 8), hi_bits=st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_np_sort(self, seed, n, radix_bits, hi_bits):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 1 << hi_bits, n)
        out, tags = radix_sort(keys, radix_bits=radix_bits,
                               payload=np.arange(n))
        assert (out == np.sort(keys)).all()
        if n:
            assert (keys[tags] == out).all()


class TestDifferential:
    """Fused, per-uProgram and interpreted regimes agree bit-exactly."""

    def _run(self, ctx, keys, recs):
        with ctx():
            with Device() as dev:
                hist = dev.plan_histogram(n_buckets=8,
                                          query_len=keys.shape[1])
                gb = dev.plan_groupby(4, agg="sum",
                                      query_len=recs.shape[1])
                h = [hist.run_many(keys) for _ in range(4)]
                g = [gb.run_many(recs) for _ in range(4)]
                return h, g, hist.stats.measured_ops, gb.stats.measured_ops

    def test_regime_sweep(self, rng):
        keys = rng.integers(0, 8, (3, 24))
        recs = np.stack([np.stack([rng.integers(0, 4, 24),
                                   rng.integers(-9, 10, 24)], axis=1)
                         for _ in range(3)])
        import contextlib
        base = self._run(contextlib.nullcontext, keys, recs)
        for ctx in (megatrace_disabled, fusion_disabled):
            other = self._run(ctx, keys, recs)
            for a, b in zip(base[0], other[0]):
                assert (a == b).all()
            for a, b in zip(base[1], other[1]):
                assert (a == b).all()
            # identical executed command streams, fused or not
            assert base[2:] == other[2:]


class TestParkUnpark:
    def test_round_trip_exact(self, rng):
        keys1 = rng.integers(0, 6, 32)
        keys2 = rng.integers(0, 6, 32)
        with Device() as dev:
            plan = dev.plan_histogram(n_buckets=6, x_budget=32)
            a = plan(keys1)
            plan.park()
            assert plan.is_parked and not plan.is_resident
            b = plan(keys2)                  # transparent unpark
            assert (a == _bincount(keys1, 6)).all()
            assert (b == _bincount(keys2, 6)).all()
            stats = plan.stats
            assert stats.parks == 1 and stats.unparks == 1

    def test_registry_eviction_under_pressure(self, rng):
        # Pool fits one resident analytics plan; the registry parks the
        # LRU model to run the other, and both stay exact throughout.
        with Server(pool_banks=4) as srv:
            srv.register("h1", kind="histogram", n_buckets=4,
                         query_len=16)
            srv.register("h2", kind="histogram", n_buckets=4,
                         query_len=16)
            for _ in range(3):
                for name in ("h1", "h2"):
                    keys = rng.integers(0, 4, 16)
                    resp = srv.submit(name, keys).result()
                    assert (resp.y == _bincount(keys, 4)).all()
            assert srv.registry.stats.evictions >= 1


class TestServeSeam:
    def test_mixed_kind_bursts(self, rng):
        with Server(pool_banks=4096) as srv:
            srv.register("eye", np.eye(4, dtype=np.uint8), kind="binary")
            srv.register("hist", kind="histogram", n_buckets=8,
                         query_len=24)
            srv.register("gb", kind="groupby", n_groups=4, agg="sum",
                         query_len=16)
            keys = rng.integers(0, 8, (5, 24))
            for i, r in enumerate(srv.submit_many("hist", keys)):
                res = r.result()
                assert (res.y == _bincount(keys[i], 8)).all()
                assert res.report.batch_size == 5
                assert res.report.measured_ops > 0
            recs = np.stack([np.stack([rng.integers(0, 4, 16),
                                       rng.integers(-9, 10, 16)], axis=1)
                             for _ in range(5)])
            for i, r in enumerate(srv.submit_many("gb", recs)):
                res = r.result()
                assert (res.y ==
                        _groupby_golden(recs[i], 4, "sum")).all()
            xs = rng.integers(0, 5, (3, 4))
            for i, r in enumerate(srv.submit_many("eye", xs)):
                assert (r.result().y == xs[i]).all()

    def test_unsupported_kind_is_typed(self):
        with Server() as srv:
            with pytest.raises(UnsupportedPlanKindError, match="conv"):
                srv.register("conv", np.eye(2), kind="conv")
            assert issubclass(UnsupportedPlanKindError, ValueError)

    def test_kind_argument_validation(self):
        with Server() as srv:
            with pytest.raises(ValueError, match="no operand"):
                srv.register("h", np.eye(2), kind="histogram",
                             n_buckets=2)
            with pytest.raises(ValueError, match="operand matrix z"):
                srv.register("g", kind="binary")

    def test_bad_queries_rejected_at_submit(self, rng):
        with Server() as srv:
            srv.register("hist", kind="histogram", n_buckets=4,
                         query_len=8)
            with pytest.raises(ValueError, match="lie in"):
                srv.submit("hist", np.full(8, 99))
            with pytest.raises(ValueError, match="leading axis"):
                srv.submit_many("hist", np.zeros(8, dtype=np.int64))


class TestFaultCampaign:
    def test_faulty_histograms_account_not_crash(self, rng):
        keys = rng.integers(0, 8, 48)
        campaign = Campaign(trial=histogram_fault_trial(keys, 8),
                            pool_banks=16, banks_per_trial=4,
                            base_seed=11)
        points = [FaultPoint(p_cim=0.0, label="nominal"),
                  FaultPoint(p_cim=2e-2)]
        result = campaign.run(points, n_trials=3)
        nominal = result.point_trials(0)
        faulty = result.point_trials(1)
        assert all(t.metrics["exact"] == 1 for t in nominal)
        assert all(t.metrics["injected"] == 0 for t in nominal)
        assert sum(t.metrics["injected"] for t in faulty) > 0
        # every faulty trial completed with a full accounting
        assert all({"wrong_buckets", "abs_count_error"} <=
                   set(t.metrics) for t in faulty)

    def test_campaign_is_seed_deterministic(self, rng):
        keys = rng.integers(0, 4, 32)
        points = [FaultPoint(p_cim=2e-2)]

        def run():
            c = Campaign(trial=histogram_fault_trial(keys, 4),
                         pool_banks=8, banks_per_trial=4, base_seed=5)
            return [t.metrics for t in c.run(points, n_trials=2).trials]

        assert run() == run()


class TestExperiment:
    def test_registered_and_quick_run(self):
        from repro.experiments import experiment_names, run_experiment
        assert "analytics" in experiment_names()
        res = run_experiment("analytics", quick=True)
        clean = [r for r in res.rows if r.get("backend") is not None]
        assert clean and all(r["exact"] for r in clean)
        fault_rows = [r for r in res.rows
                      if r.get("workload") == "histogram-faults"]
        assert fault_rows and any("p_cim" in r["point"]
                                  for r in fault_rows)
