"""Command-stream generation, multi-subarray banking, and the bit-serial
multiplier baseline."""

import numpy as np
import pytest

from repro.baselines.multiplier import BitSerialMultiplier, multiply_ops
from repro.core.johnson import decode_lanes
from repro.core.opcount import rca_add_ops
from repro.dram import AmbitSubarray, FaultModel
from repro.engine import BankedEngine
from repro.engine.mapping import CounterLayout
from repro.isa.codegen import (CommandStream, MicroProgramGenerator,
                               generation_throughput_estimate)
from repro.isa.microprogram import MicroProgram


class TestCodegen:
    def _run_stream(self, layout, stream, n_lanes, mask):
        sa = AmbitSubarray(layout.total_rows, n_lanes)
        sa.write_data_row(layout.mask_rows[0], mask)
        MicroProgram("stream", tuple(stream.micro_ops)).run(sa)
        total = np.zeros(n_lanes, dtype=np.int64)
        weight = 1
        for d in range(layout.n_digits):
            total += decode_lanes(
                sa.read_rows(layout.digit_bit_rows[d])) * weight
            weight *= 2 * layout.n_bits
        return total

    def test_generated_stream_counts_correctly(self, rng):
        layout = CounterLayout(2, 6)
        generator = MicroProgramGenerator(layout)
        values = rng.integers(0, 120, 25)
        stream = generator.generate_stream(values)
        mask = np.ones(8, dtype=np.uint8)
        total = self._run_stream(layout, stream, 8, mask)
        assert (total == values.sum()).all()

    def test_masked_lanes_skip(self, rng):
        layout = CounterLayout(5, 3)
        generator = MicroProgramGenerator(layout)
        values = rng.integers(0, 60, 10)
        stream = generator.generate_stream(values)
        mask = np.array([1, 0, 1, 0], dtype=np.uint8)
        total = self._run_stream(layout, stream, 4, mask)
        assert (total == values.sum() * mask).all()

    def test_template_cache_hits(self, rng):
        layout = CounterLayout(2, 8)
        generator = MicroProgramGenerator(layout)
        generator.generate_stream(rng.integers(0, 256, 50))
        # Radix-4 has only 3 distinct k values per digit position.
        assert len(generator._increment_cache) <= 3 * 8

    def test_command_expansion(self):
        layout = CounterLayout(2, 2)
        generator = MicroProgramGenerator(layout)
        stream = generator.generate_stream([3])
        commands = list(stream.commands(bank=5))
        # Every AAP is 3 primitive commands, every AP is 2.
        prog = MicroProgram("s", tuple(stream.micro_ops))
        assert len(commands) == 3 * prog.aap_count + 2 * prog.ap_count
        assert all(c.bank == 5 for c in commands)

    def test_stream_accounting(self, rng):
        layout = CounterLayout(2, 6)
        generator = MicroProgramGenerator(layout)
        stream = generator.generate_stream([0, 5, 0])
        assert stream.values_processed == 3
        assert stream.increments >= 1

    def test_throughput_estimate_fields(self, rng):
        est = generation_throughput_estimate(rng.integers(0, 256, 200))
        assert est["ops_generated"] > 0
        assert est["generation_ops_per_s"] > 0
        assert est["dram_aap_rate_per_s"] > 1e8


class TestBankedEngine:
    def test_tiling_matches_reference(self, rng):
        be = BankedEngine(n_bits=2, n_digits=6, n_lanes=40,
                          lanes_per_subarray=16)
        assert be.n_tiles == 3
        ref = np.zeros(40, dtype=np.int64)
        for _ in range(25):
            x = int(rng.integers(0, 80))
            mask = rng.integers(0, 2, 40).astype(np.uint8)
            be.load_mask(mask)
            be.accumulate(x)
            ref += x * mask.astype(np.int64)
        assert (be.read_values() == ref).all()

    def test_exact_tile_boundary(self, rng):
        be = BankedEngine(n_bits=2, n_digits=5, n_lanes=32,
                          lanes_per_subarray=16)
        assert be.n_tiles == 2
        be.load_mask(np.ones(32, dtype=np.uint8))
        be.accumulate(9)
        assert (be.read_values() == 9).all()

    def test_mask_width_check(self):
        be = BankedEngine(2, 4, 20, 8)
        with pytest.raises(ValueError):
            be.load_mask(np.ones(19, dtype=np.uint8))

    def test_protected_tiles_under_faults(self, rng):
        fm = FaultModel(p_cim=3e-3, seed=6)
        be = BankedEngine(n_bits=2, n_digits=5, n_lanes=24,
                          lanes_per_subarray=8, fault_model=fm,
                          fr_checks=2)
        ref = np.zeros(24, dtype=np.int64)
        for _ in range(8):
            x = int(rng.integers(1, 40))
            mask = rng.integers(0, 2, 24).astype(np.uint8)
            be.load_mask(mask)
            be.accumulate(x)
            ref += x * mask.astype(np.int64)
        assert (be.read_values(strict=False) == ref).all()


class TestBitSerialMultiplier:
    def test_multiply_accumulate(self, rng):
        mult = BitSerialMultiplier(operand_bits=6, accumulator_bits=20,
                                   n_lanes=12)
        mult.reset()
        b = rng.integers(0, 64, 12)
        mult.load_multiplicands(b)
        ref = np.zeros(12, dtype=np.int64)
        for _ in range(4):
            a = int(rng.integers(0, 64))
            mult.multiply_accumulate(a)
            ref += a * b
        assert (mult.read_products() == ref).all()

    def test_ops_model_matches_measured(self):
        mult = BitSerialMultiplier(operand_bits=5, accumulator_bits=16,
                                   n_lanes=4)
        mult.reset()
        mult.load_multiplicands(np.array([1, 2, 3, 4]))
        mult.multiply_accumulate(7)
        assert mult.ops_issued == multiply_ops(5, 16)

    def test_much_costlier_than_counting(self, rng):
        """The Sec. 5.2.3 motivation: CSD counting beats shift-add."""
        from repro.core.iarm import IARMScheduler
        from repro.core.opcount import (digits_for_capacity,
                                        mean_ops_per_value)
        sample = rng.integers(0, 256, 500)
        digits = digits_for_capacity(2, 2 ** 32)
        counting = mean_ops_per_value(IARMScheduler, sample, 2, digits)
        shift_add = multiply_ops(8, 32)
        assert shift_add > 10 * counting

    def test_operand_range_checks(self):
        mult = BitSerialMultiplier(4, 12, 2)
        with pytest.raises(ValueError):
            mult.load_multiplicands(np.array([16, 0]))
        mult.load_multiplicands(np.array([3, 5]))
        with pytest.raises(ValueError):
            mult.multiply_accumulate(16)


class TestRefreshAwareTiming:
    def test_refresh_stretches_makespan(self):
        from repro.dram.timing import DDR5_4400_TIMING, time_for_aaps_ns
        plain = time_for_aaps_ns(10_000, 16)
        with_ref = time_for_aaps_ns(10_000, 16, include_refresh=True)
        assert with_ref == pytest.approx(
            plain * (1 + DDR5_4400_TIMING.refresh_overhead))
        # DDR5 duty cycle is a few percent.
        assert 0.01 < DDR5_4400_TIMING.refresh_overhead < 0.10
