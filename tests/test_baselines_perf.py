"""Baselines (RCA, SIMDRAM, GPU) and the performance models."""

import numpy as np
import pytest

from repro.baselines import (GPUModel, RCAAccumulator, SIMDRAMConfig,
                             SIMDRAMModel, rca_masked_add_fast)
from repro.core.opcount import RCA_OPS_PER_BIT, rca_add_ops
from repro.dram import FaultModel
from repro.perf import (C2MConfig, C2MModel, CostReport, GEMMShape,
                        gpu_cost, simdram_cost)


class TestRCAGateLevel:
    def test_masked_accumulation(self, rng):
        acc = RCAAccumulator(16, 20)
        acc.reset()
        ref = np.zeros(20, dtype=np.int64)
        for _ in range(30):
            x = int(rng.integers(0, 300))
            mask = rng.integers(0, 2, 20).astype(np.uint8)
            acc.load_mask(mask)
            acc.add_masked(x)
            ref = (ref + x * mask.astype(np.int64)) % (1 << 16)
        assert (acc.read_values() == ref).all()

    def test_signed_twos_complement(self, rng):
        acc = RCAAccumulator(16, 8)
        acc.reset()
        ref = np.zeros(8, dtype=np.int64)
        for _ in range(25):
            x = int(rng.integers(-80, 120))
            mask = rng.integers(0, 2, 8).astype(np.uint8)
            acc.load_mask(mask)
            acc.add_masked(x)
            ref += x * mask.astype(np.int64)
        assert (acc.read_signed() == ref).all()

    def test_op_count_formula(self):
        acc = RCAAccumulator(32, 4)
        acc.reset()
        acc.load_mask(np.ones(4, dtype=np.uint8))
        ops = acc.add_masked(123)
        assert ops == RCA_OPS_PER_BIT * 32 + 1
        assert rca_add_ops(32) == RCA_OPS_PER_BIT * 32

    def test_fast_model_matches_fault_free(self, rng):
        bits = np.zeros((24, 12), dtype=np.uint8)
        ref = np.zeros(12, dtype=np.int64)
        for _ in range(30):
            x = int(rng.integers(0, 200))
            mask = rng.integers(0, 2, 12).astype(np.uint8)
            bits = rca_masked_add_fast(bits, x, mask)
            ref += x * mask.astype(np.int64)
        weights = 1 << np.arange(24, dtype=np.int64)
        assert ((bits.astype(np.int64) * weights[:, None]).sum(0)
                == ref).all()

    def test_fast_model_faults_hit_high_bits(self, rng):
        fm = FaultModel(p_cim=1e-3, seed=2, margin_aware=False)
        bits = np.zeros((32, 256), dtype=np.uint8)
        for _ in range(50):
            bits = rca_masked_add_fast(bits, 3, np.ones(256, np.uint8), fm)
        weights = 1 << np.arange(32, dtype=np.int64)
        vals = (bits.astype(np.int64) * weights[:, None]).sum(0)
        err = np.abs(vals - 150)
        assert err.max() > 2 ** 16      # catastrophic high-order damage


class TestSIMDRAMModel:
    def test_ops_per_input(self):
        model = SIMDRAMModel(SIMDRAMConfig(ternary=True,
                                           accumulator_bits=64))
        assert model.ops_per_input() == 2 * (rca_add_ops(64) + 1)

    def test_gemm_aaps_column_tiling(self):
        model = SIMDRAMModel(SIMDRAMConfig())
        small = model.gemm_aaps(1, 65536, 10)
        tiled = model.gemm_aaps(1, 65537, 10)
        assert tiled == 2 * small

    def test_sparsity_blind(self):
        """SIMDRAM's stream is input-independent (Sec. 7.2.3)."""
        shape = GEMMShape(4, 100, 50)
        assert (simdram_cost(shape).time_s
                == simdram_cost(shape).time_s)


class TestGPUModel:
    def test_gemm_compute_bound(self):
        gpu = GPUModel()
        t = gpu.kernel_time_s(8192, 8192, 8192)
        ops = 2 * 8192 ** 3
        achieved = ops / t / 1e12
        assert achieved == pytest.approx(
            gpu.spec.int8_tensor_tops * gpu.spec.utilization, rel=0.01)

    def test_gemv_memory_bound(self):
        gpu = GPUModel()
        t = gpu.kernel_time_s(1, 22016, 8192)
        weight_bytes = 22016 * 8192 * gpu.weight_bits / 8
        assert t >= weight_bytes / (gpu.spec.mem_bandwidth_gbs * 1e9)

    def test_transfer_dominates_gemv_latency(self):
        gpu = GPUModel()
        total = gpu.total_time_s(1, 22016, 8192)
        kernel = gpu.kernel_time_s(1, 22016, 8192)
        assert total > 5 * kernel

    def test_weights_resident_removes_stream(self):
        gpu = GPUModel()
        assert (gpu.total_time_s(1, 1000, 1000, weights_resident=True)
                < gpu.total_time_s(1, 1000, 1000))


class TestC2MModel:
    def test_ops_per_input_reasonable(self):
        model = C2MModel(C2MConfig())
        ops = model.ops_per_input()
        # Two ternary passes of a handful of radix-4 k-ary increments.
        assert 50 < ops < 500

    def test_protection_inflates_ops(self):
        plain = C2MModel(C2MConfig()).ops_per_input()
        prot = C2MModel(C2MConfig(fr_checks=2,
                                  fault_rate=1e-4)).ops_per_input()
        ratio = prot / plain
        # (13n+16)/(7n+7) at n=2 is 2x, plus 19.6% correction.
        assert ratio == pytest.approx(2.0 * 1.196, rel=0.02)

    def test_sparsity_scales_linearly(self):
        model = C2MModel(C2MConfig())
        shape = GEMMShape(1, 1000, 1000)
        dense = model.gemm_aaps(shape, 0.0)
        half = model.gemm_aaps(shape, 0.5)
        assert half == pytest.approx(dense / 2, rel=1e-6)

    def test_bank_scaling(self):
        shape = GEMMShape(1, 22016, 8192)
        t1 = C2MModel(C2MConfig(banks=1)).cost(shape).time_s
        t4 = C2MModel(C2MConfig(banks=4)).cost(shape).time_s
        t16 = C2MModel(C2MConfig(banks=16)).cost(shape).time_s
        assert t1 / t4 == pytest.approx(4.0, rel=0.01)
        assert 1.5 < t4 / t16 < 4.0          # FAW-bound regime

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            C2MModel(C2MConfig()).gemm_aaps(GEMMShape(1, 2, 3), -0.1)

    def test_unknown_scheduler(self):
        with pytest.raises(ValueError):
            C2MModel(C2MConfig(scheduler="magic"))


class TestHeadlineResults:
    """The paper's top-line comparisons, asserted as invariants."""

    def test_c2m_beats_simdram_everywhere(self):
        c2m = C2MModel(C2MConfig(banks=16))
        for shape in (GEMMShape(1, 22016, 8192), GEMMShape(64, 4096, 4096)):
            c = c2m.cost(shape)
            s = simdram_cost(shape, banks=16)
            assert 2.0 < s.time_s / c.time_s < 12.0   # "up to 10x"

    def test_gpu_wins_dense_gemm(self):
        shape = GEMMShape(8192, 8192, 8192)
        assert gpu_cost(shape).time_s < C2MModel(
            C2MConfig(banks=16)).cost(shape).time_s

    def test_gemv_sparsity_crossover_vs_gpu(self):
        """Fig. 16: C2M overtakes the GPU at moderate GEMV sparsity."""
        shape = GEMMShape(1, 22016, 8192)
        c2m = C2MModel(C2MConfig(banks=16))
        g = gpu_cost(shape)
        assert c2m.cost(shape, sparsity=0.0).time_s > g.time_s * 0.5
        assert c2m.cost(shape, sparsity=0.8).time_s < g.time_s

    def test_gemm_needs_extreme_sparsity(self):
        shape = GEMMShape(8192, 22016, 8192)
        c2m = C2MModel(C2MConfig(banks=16))
        g = gpu_cost(shape)
        assert c2m.cost(shape, sparsity=0.99).time_s > g.time_s

    def test_cim_gops_per_watt_beats_gpu_on_gemv(self):
        shape = GEMMShape(1, 22016, 8192)
        c = C2MModel(C2MConfig(banks=16)).cost(shape)
        g = gpu_cost(shape)
        assert c.gops_per_watt > 10 * g.gops_per_watt


class TestCostReport:
    def test_derived_metrics(self):
        r = CostReport("x", nominal_ops=2e9, time_s=1.0, energy_j=10.0,
                       area_mm2=100.0)
        assert r.gops == pytest.approx(2.0)
        assert r.power_w == pytest.approx(10.0)
        assert r.gops_per_watt == pytest.approx(0.2)
        assert r.gops_per_mm2 == pytest.approx(0.02)

    def test_normalization(self):
        a = CostReport("a", 2e9, 1.0, 10.0, 100.0)
        b = CostReport("b", 2e9, 2.0, 10.0, 100.0)
        assert a.normalized_to(b)["speedup"] == pytest.approx(2.0)
