"""Experiment registry: every table/figure regenerates with the paper's
qualitative structure intact."""

import math

import numpy as np
import pytest

from repro.experiments import experiment_names, run_experiment


class TestRegistry:
    def test_all_experiments_registered(self):
        names = experiment_names()
        for expected in ("analytics", "fig03", "fig04", "fig07", "fig08",
                         "fig09", "fig10", "fig14", "fig15", "fig16",
                         "fig17", "fig18", "fig19", "fleet", "table1"):
            assert expected in names

    def test_unknown_name(self):
        from repro.experiments import get_experiment
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_render_smoke(self):
        res = run_experiment("fig19")
        text = res.render()
        assert "Fig. 19" in text and "radix10" in text


class TestFigureInvariants:
    def test_fig07_all_patterns_correct(self):
        res = run_experiment("fig07")
        assert len(res.rows) == 9
        assert all(r["all_states_correct"] for r in res.rows)
        # Constant work: forward + inverted edges always total n = 5.
        assert all(r["forward_shift_edges"]
                   + r["inverted_feedback_edges"] == 5 for r in res.rows)

    def test_fig08_orderings(self):
        res = run_experiment("fig08")
        rca_row = next(r for r in res.rows if r["radix"] == "RCA")
        for row in res.rows:
            if row["radix"] == "RCA":
                continue
            # IARM always beats naive k-ary and the worst-case RCA_i64.
            assert row["iarm"] < row["kary_i64"]
            assert row["iarm"] < rca_row["unit_i64"]
        # IARM minimum sits in the paper's radix 4-8 sweet spot.
        iarm = {r["radix"]: r["iarm"] for r in res.rows
                if r["radix"] != "RCA"}
        best = min(iarm, key=iarm.get)
        assert best in (4, 6, 8)

    def test_fig09_values_always_exact(self):
        res = run_experiment("fig09")
        assert res.rows[0]["carry_resolves"] == 0      # Fig. 9 step 1
        assert res.rows[0]["value"] == 10008
        assert all("#" in r["digits(MSD..LSD)"] for r in res.rows)

    def test_fig10_counts(self):
        res = run_experiment("fig10")
        for row in res.rows:
            n = row["n_bits"]
            assert row["pinatubo_measured"] == 3 * n + 4
            assert row["magic_measured"] <= 6 * n + 5
            assert row["pinatubo_measured"] < row["ambit(7n+7)"]

    def test_table1_matches_paper(self):
        res = run_experiment("table1")
        for row in res.rows:
            assert row["error_rate"] == pytest.approx(
                row["paper_error"], rel=0.55)
            assert row["detect_rate"] == pytest.approx(
                row["paper_detect"], rel=0.05)

    def test_fig14_structure(self):
        res = run_experiment("fig14")
        assert len(res.rows) == 10
        for row in res.rows:
            # C2M always ahead of SIMDRAM; GPU ahead on dense GEMM.
            assert row["C2M_gops"] > row["SIMDRAM_gops"]
            if row["workload"].startswith("M"):
                assert row["GPU_gops"] > row["C2M_gops"]
            assert row["C2M/GPU_gops_per_W"] > row["SIMDRAM/GPU_gops_per_W"]

    def test_fig15_bank_scaling(self):
        res = run_experiment("fig15")
        for row in res.rows:
            assert row["C2M:1_ms"] > row["C2M:4_ms"] > row["C2M:16_ms"]
            assert row["SIMDRAM:16_ms"] > row["C2M:16_ms"]
            ratio = row["C2M:1_ms"] / row["C2M:4_ms"]
            assert ratio == pytest.approx(4.0, rel=0.02)

    def test_fig16_crossovers(self):
        res = run_experiment("fig16")
        v0 = [r for r in res.rows if r["workload"] == "V0"]
        m0 = [r for r in res.rows if r["workload"] == "M0"]
        # C2M latency falls with sparsity; GPU and SIMDRAM stay flat.
        assert v0[0]["C2M_ms"] > v0[-1]["C2M_ms"]
        assert v0[0]["GPU_ms"] == v0[-1]["GPU_ms"]
        assert v0[0]["SIMDRAM_ms"] == v0[-1]["SIMDRAM_ms"]
        # GEMV crossover at moderate sparsity, GEMM only at the extreme.
        v0_cross = next(float(n.split("beyond ")[1].split("%")[0])
                        for n in res.notes if n.startswith("V0"))
        m0_cross = next(float(n.split("beyond ")[1].split("%")[0])
                        for n in res.notes if n.startswith("M0"))
        assert 10 <= v0_cross <= 75          # paper: ~40 %
        assert m0_cross > 99 or math.isnan(m0_cross)

    def test_fig19_checkpoints(self):
        res = run_experiment("fig19")
        dna = next(r for r in res.rows
                   if str(r["capacity"]).startswith("DNA"))
        assert dna["radix10"] == 10 and dna["binary"] == 7
        for row in res.rows:
            if isinstance(row["capacity"], int):
                exp = int(math.log2(row["capacity"]))
                if exp % 2 == 0:
                    assert row["radix4"] == row["binary"]

    def test_fig03_small_values(self):
        res = run_experiment("fig03")
        assert any("4-8 bits" in n or "bits" in n for n in res.notes)
        dna_rows = [r for r in res.rows
                    if r["source"] == "DNA token repetition"]
        assert dna_rows and dna_rows[0]["value"] <= 2

    def test_fleet_parity(self):
        res = run_experiment("fleet", quick=True)
        configs = {r["config"]: r for r in res.rows}
        assert set(configs) == {"server", "fleet-2"}
        assert all(r["parity"] for r in res.rows)
        assert configs["fleet-2"]["shards"] == 2
        for row in res.rows:
            assert row["p50_us"] <= row["p99_us"]


@pytest.mark.slow
class TestSlowExperiments:
    def test_fig04_shapes(self):
        res = run_experiment("fig04")
        rmse_rows = [r for r in res.rows if "rmse[JC]" in r]
        at = {r["fault_rate"]: r for r in rmse_rows}
        # RCA error dwarfs JC at every common fault rate.
        for f in (1e-4, 1e-3, 1e-2):
            assert at[f]["rmse[RCA]"] > 5 * at[f]["rmse[JC]"]
        # Protection flattens the curve at moderate rates.
        assert at[1e-3]["rmse[JC+ECC]"] < at[1e-3]["rmse[JC]"] + 1e-9

    def test_fig17_orderings(self):
        res = run_experiment("fig17")
        dna = {r["fault_rate"]: r for r in res.rows if r["app"] == "DNA"}
        assert dna[1e-4]["JC"] > dna[1e-4]["RCA"]
        assert dna[1e-2]["JC+ECC"] > dna[1e-2]["JC+TMR"] - 0.05
        assert dna[1e-2]["JC+ECC"] > 0.9
        bert = {r["fault_rate"]: r for r in res.rows if r["app"] == "BERT"}
        assert bert[1e-2]["JC+ECC"] >= bert[1e-2]["JC"]

    def test_fig18_protection_overheads(self):
        res = run_experiment("fig18")
        for row in res.rows:
            assert row["C2M_ms"] < row["SIMDRAM_ms"]
            assert row["C2M_protected_ms"] > row["C2M_ms"]
            inflation = row["C2M_protected_ms"] / row["C2M_ms"]
            # (13n+16)/(7n+7)|n=2 * 1.196 = 2.39x
            assert inflation == pytest.approx(2.39, rel=0.05)
            assert row["correction_overhead"] == pytest.approx(0.196,
                                                               abs=0.01)
