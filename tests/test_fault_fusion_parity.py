"""Fault-aware fusion: fused == interpreted == bit, *including faults*.

The tentpole contract of the fault-trace compiler
(:mod:`repro.isa.trace`): replaying a compiled fault trace must be
indistinguishable from the interpreted per-op path and from the
bit-level backend --

* cell states and decoded values,
* every command counter (AAP/AP/activations/multi-row, measured ops),
* the *injected-fault stream*: per-epoch ``FaultModel.injected``
  deltas, the monotonic ``fault_injections`` counter, and the fault
  model's terminal RNG state (the strongest stream-position pin),

across seeds, ``margin_aware`` on/off, and the three read-rate regimes
``p_read in {0, p_cim/10, p_cim}`` that select ``corrupt``'s draw
sequence.  Also pinned here: the order-preserving RNG contract the
pre-pass rests on (batched ``predraw`` == sequential draws), the exact
one-interpreted-run JIT warm-up, fault-regime recompilation, and the
``injected_faults`` telemetry threading (engine -> plan -> serve).
"""

import contextlib

import numpy as np
import pytest

from repro.core.iarm import Increment
from repro.dram.faults import FaultModel
from repro.engine import CountingEngine
from repro.isa.trace import FaultSpec, fusion_disabled

# (n_bits, n_digits, p_cim, read_mode, margin_aware, seed) where
# read_mode picks p_read in {0, p_cim/10, p_cim}.
GRID = [
    (2, 4, 1e-2, "zero", True, 0),
    (2, 4, 1e-2, "tenth", True, 1),
    (2, 4, 1e-2, "equal", True, 2),
    (2, 4, 1e-2, "tenth", False, 3),
    (1, 5, 5e-2, "zero", True, 4),
    (3, 3, 2e-2, "tenth", True, 5),
    (2, 5, 2e-1, "equal", True, 6),
    (2, 4, 0.0, "any", True, 7),         # p_cim=0, p_read>0: reads only
]


def _p_read(p_cim: float, mode: str) -> float:
    if mode == "zero":
        return 0.0
    if mode == "tenth":
        return p_cim / 10 if p_cim else 1e-3
    if mode == "equal":
        return p_cim
    return 1e-3                            # "any" (p_cim == 0 regime)


def _run_stream(backend, n_bits, n_digits, p_cim, p_read, margin_aware,
                seed, fused=True, n_lanes=24, n_updates=5, rounds=4):
    """Replay one fixed update stream ``rounds`` times under faults.

    Rounds replay identical programs, so a fused run is past the JIT
    warm-up from round two on and genuinely replays fault traces.
    Returns everything parity must cover, including the per-epoch
    injected stream and the fault model's terminal RNG state.
    """
    fm = FaultModel(p_cim=p_cim, p_read=p_read,
                    margin_aware=margin_aware, seed=1000 + seed)
    eng = CountingEngine(n_bits, n_digits, n_lanes, fault_model=fm,
                         backend=backend)
    rng = np.random.default_rng(seed)
    budget = (2 * n_bits) ** n_digits - 1
    updates = [
        (int(rng.integers(1, max(2, budget // (n_updates + 1)))),
         rng.integers(0, 2, n_lanes).astype(np.uint8))
        for _ in range(n_updates)]
    injected_stream = []
    ctx = contextlib.nullcontext() if fused else fusion_disabled()
    with ctx:
        for _ in range(rounds):
            eng.reset_counters()           # epoch: resets fm.injected
            for value, mask in updates:
                eng.load_mask(0, mask)
                eng.accumulate(value)
            injected_stream.append(fm.injected)
        values = eng.read_values(strict=False)
    subarray = eng.subarray
    stats = (subarray.stats() if hasattr(subarray, "stats")
             else subarray.array.stats())
    return {
        "values": values,
        "rows": eng.export_counters(),
        "counters": (subarray.aap_count, subarray.ap_count) + stats,
        "measured_ops": eng.measured_ops,
        "injected_stream": injected_stream,
        "fault_injections": subarray.fault_injections,
        "engine_injected": eng.counters.injected_faults,
        "rng_state": fm._rng.bit_generator.state["state"],
        "trace_replays": subarray.trace_replays,
    }


@pytest.mark.parametrize(
    "n_bits,n_digits,p_cim,read_mode,margin_aware,seed", GRID)
def test_fault_grid_fused_interpreted_bit_identical(
        n_bits, n_digits, p_cim, read_mode, margin_aware, seed):
    p_read = _p_read(p_cim, read_mode)
    fused = _run_stream("word", n_bits, n_digits, p_cim, p_read,
                        margin_aware, seed, fused=True)
    interp = _run_stream("word", n_bits, n_digits, p_cim, p_read,
                         margin_aware, seed, fused=False)
    bit = _run_stream("bit", n_bits, n_digits, p_cim, p_read,
                      margin_aware, seed)
    # The fused run really replayed fault traces; the others never did.
    assert fused["trace_replays"] > 0
    assert interp["trace_replays"] == 0 and bit["trace_replays"] == 0
    for other in (interp, bit):
        assert (fused["values"] == other["values"]).all()
        assert (fused["rows"] == other["rows"]).all()
        assert fused["counters"] == other["counters"]
        assert fused["measured_ops"] == other["measured_ops"]
        # The injected-fault stream: per-epoch counts, monotonic
        # subarray/engine counters, and the RNG's terminal position.
        assert fused["injected_stream"] == other["injected_stream"]
        assert fused["fault_injections"] == other["fault_injections"]
        assert fused["engine_injected"] == other["engine_injected"]
        assert fused["rng_state"] == other["rng_state"]
    if p_cim > 0:
        assert sum(fused["injected_stream"]) > 0


@pytest.mark.parametrize("read_mode", ["zero", "tenth", "equal"])
def test_per_event_k_steps_fault_parity(read_mode):
    """Single k-ary increment events, per digit, under faults."""
    n_bits, n_digits, lanes = 2, 3, 17
    p_cim = 5e-2
    p_read = _p_read(p_cim, read_mode)
    results = {}
    for mode in ("fused", "interp", "bit"):
        backend = "bit" if mode == "bit" else "word"
        fm = FaultModel(p_cim=p_cim, p_read=p_read, seed=42)
        eng = CountingEngine(n_bits, n_digits, lanes, fault_model=fm,
                             backend=backend)
        eng.reset_counters()
        rng = np.random.default_rng(99)
        eng.load_mask(0, rng.integers(0, 2, lanes).astype(np.uint8))
        ctx = (fusion_disabled() if mode == "interp"
               else contextlib.nullcontext())
        with ctx:
            for k in list(range(1, 2 * n_bits)) + [-1]:
                for digit in range(n_digits - 1):
                    for _ in range(3):
                        eng.execute_events([Increment(digit, k)])
        results[mode] = (eng.export_counters(), fm.injected,
                         fm._rng.bit_generator.state["state"],
                         eng.subarray.trace_replays)
    assert results["fused"][3] > 0
    for mode in ("interp", "bit"):
        assert (results["fused"][0] == results[mode][0]).all()
        assert results["fused"][1] == results[mode][1]
        assert results["fused"][2] == results[mode][2]


# ----------------------------------------------------------------------
# the order-preserving RNG contract (satellite: corrupt draw sequence)
# ----------------------------------------------------------------------
def test_predraw_matches_sequential_draws():
    """One batched predraw == N sequential per-activation draws."""
    a = FaultModel(p_cim=1e-2, seed=123)
    b = FaultModel(p_cim=1e-2, seed=123)
    batched = a.predraw(7, 33)
    sequential = np.stack([b._rng.random(33) for _ in range(7)])
    assert (batched == sequential).all()
    assert (a._rng.bit_generator.state["state"]
            == b._rng.bit_generator.state["state"])


@pytest.mark.parametrize("p_read_factor,margin_aware,expect_draws", [
    (0.0, True, 1),      # margin-aware, p_read=0: one CIM draw
    (0.1, True, 2),      # 0 < p_read < p_cim: CIM draw + read draw
    (1.0, True, 1),      # p_read == p_cim: selection off, one draw
    (0.1, False, 1),     # margin-unaware: one draw
])
def test_corrupt_margin_aware_draw_sequence(p_read_factor, margin_aware,
                                            expect_draws):
    """The second RNG draw fires exactly when 0 < p_read < p_cim with
    margin awareness on -- the sequence the fault pre-pass replicates."""
    p_cim = 1e-1
    n = 50
    fm = FaultModel(p_cim=p_cim, p_read=p_cim * p_read_factor,
                    margin_aware=margin_aware, seed=7)
    shadow = np.random.default_rng(7)
    bits = np.zeros(n, dtype=np.uint8)
    contested = np.zeros(n, dtype=bool)
    contested[::3] = True
    out = fm.corrupt(bits, multi_row=True, contested=contested)
    # Reconstruct the expected flips from a shadow generator drawing
    # the documented sequence.
    cim = shadow.random(n) < p_cim
    if expect_draws == 2:
        read = shadow.random(n) < fm.p_read
        flips = np.where(contested, cim, read)
    elif margin_aware and fm.p_read == 0.0:
        flips = np.where(contested, cim, False)
    else:
        flips = cim
    assert (out == flips.astype(np.uint8)).all()
    assert fm.injected == int(flips.sum())
    # Stream position: exactly expect_draws draws were consumed.
    assert (fm._rng.bit_generator.state["state"]
            == shadow.bit_generator.state["state"])
    # Word/bit engines consume this same stream (grid test above pins
    # the full end-to-end equality).


def test_single_row_sense_draws_only_at_positive_read_rate():
    fm = FaultModel(p_cim=1e-1, p_read=0.0, seed=5)
    state0 = dict(fm._rng.bit_generator.state["state"])
    out = fm.corrupt(np.zeros(16, dtype=np.uint8), multi_row=False)
    assert not out.any() and fm.injected == 0
    assert fm._rng.bit_generator.state["state"] == state0   # no draw


# ----------------------------------------------------------------------
# JIT warm-up (satellite: exact interpreted-run count)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("p_cim", [0.0, 1e-2])
def test_warmup_interpreted_run_count(p_cim):
    """Exactly ONE interpreted run before the trace compiles -- on the
    fault-free and the fault-injected path alike (FUSE_AFTER_RUNS is
    the run number that compiles, not an interpreted-run count)."""
    fm = FaultModel(p_cim=p_cim, seed=3)
    eng = CountingEngine(2, 4, 16, fault_model=fm, backend="word")
    eng.reset_counters()
    mask = np.ones(16, dtype=np.uint8)

    def one_query():
        eng.reset_counters()
        eng.load_mask(0, mask)
        eng.accumulate(5)

    one_query()                            # run 1: interpreted
    assert eng.subarray.trace_compiles == 0
    assert eng.subarray.trace_replays == 0
    one_query()                            # run 2: compiles + executes
    assert eng.subarray.trace_compiles > 0
    assert eng.subarray.trace_replays == 0
    compiles = eng.subarray.trace_compiles
    one_query()                            # run 3: pure replay
    assert eng.subarray.trace_compiles == compiles
    assert eng.subarray.trace_replays > 0


def test_fault_regime_change_recompiles():
    """Mutating the model's knobs under a cached trace recompiles it."""
    fm = FaultModel(p_cim=1e-2, seed=11)
    eng = CountingEngine(2, 4, 16, fault_model=fm, backend="word")
    eng.reset_counters()
    mask = np.ones(16, dtype=np.uint8)
    for _ in range(3):
        eng.reset_counters()
        eng.load_mask(0, mask)
        eng.accumulate(5)
    compiles = eng.subarray.trace_compiles
    assert compiles > 0
    fm.p_cim = 5e-2                         # regime change
    eng.reset_counters()
    eng.load_mask(0, mask)
    eng.accumulate(5)
    assert eng.subarray.trace_compiles > compiles
    # And the new trace carries the new spec.
    spec = FaultSpec.of(fm)
    assert spec.p_cim == 5e-2


# ----------------------------------------------------------------------
# injected-fault telemetry threading (satellite)
# ----------------------------------------------------------------------
def test_injected_resets_with_scheduler_epoch_counters_stay_monotonic():
    fm = FaultModel(p_cim=5e-2, seed=1)
    eng = CountingEngine(2, 4, 32, fault_model=fm, backend="word")
    eng.reset_counters()
    eng.load_mask(0, np.ones(32, dtype=np.uint8))
    eng.accumulate(9)
    first_epoch = fm.injected
    first_total = eng.counters.injected_faults
    assert first_epoch > 0
    assert first_total == first_epoch
    eng.reset_counters()                   # scheduler epoch
    assert fm.injected == 0                # per-epoch count reset
    assert eng.counters.injected_faults == first_total   # monotonic
    eng.load_mask(0, np.ones(32, dtype=np.uint8))
    eng.accumulate(9)
    assert eng.counters.injected_faults == first_total + fm.injected


def test_plan_stats_surface_injected_faults():
    from repro.device import Device
    rng = np.random.default_rng(2)
    z = rng.integers(-1, 2, (6, 12)).astype(np.int8)
    x = rng.integers(-4, 5, 6)
    fm = FaultModel(p_cim=5e-2, seed=8)
    with Device(n_bits=2, fault_model=fm) as dev:
        plan = dev.plan_gemv(z, kind="ternary")
        plan(x)
        first = plan.stats.injected_faults
        plan(x)
        second = plan.stats.injected_faults
        assert first > 0
        assert second > first              # monotonic across queries
        # Park/unpark keeps the retired portion.
        plan.park()
        assert plan.stats.injected_faults == second
    # Fault-free plans report zero.
    with Device(n_bits=2) as dev:
        plan = dev.plan_gemv(z, kind="ternary")
        plan(x)
        assert plan.stats.injected_faults == 0


def test_serve_report_carries_injected_fault_delta():
    from repro.serve import Server
    rng = np.random.default_rng(3)
    z = rng.integers(-1, 2, (6, 12)).astype(np.int8)
    x = rng.integers(-4, 5, 6)
    fm = FaultModel(p_cim=5e-2, seed=13)
    with Server(n_bits=2, fault_model=fm) as srv:
        srv.register("m", z, kind="ternary")
        r1 = srv.query("m", x).report
        r2 = srv.query("m", x).report
    assert r1.injected_faults > 0
    assert r2.injected_faults > 0
    # Per-query deltas, not cumulative totals: both waves ran the same
    # query, so neither report dwarfs the other.
    assert r2.injected_faults < r1.injected_faults + r2.injected_faults
    with Server(n_bits=2) as srv:
        srv.register("m", z, kind="ternary")
        assert srv.query("m", x).report.injected_faults == 0


# ----------------------------------------------------------------------
# macro-fused event batches under faults
# ----------------------------------------------------------------------
def test_macro_batches_fuse_under_faults_with_parity():
    """Whole event batches fuse under an active fault model, and the
    batch-fused stream equals the bit backend's per-event stream."""

    def run(backend):
        fm = FaultModel(p_cim=2e-2, p_read=2e-3, seed=21)
        eng = CountingEngine(2, 5, 40, fault_model=fm, backend=backend)
        eng.reset_counters()
        rng = np.random.default_rng(4)
        updates = [(int(rng.integers(30, 60)),
                    rng.integers(0, 2, 40).astype(np.uint8))
                   for _ in range(3)]
        for _ in range(3):
            eng.reset_counters()
            for value, mask in updates:
                eng.load_mask(0, mask)
                eng.accumulate(value)      # multi-event batches
        return (eng.export_counters(), fm.injected,
                fm._rng.bit_generator.state["state"],
                eng.subarray.trace_replays)

    word = run("word")
    bit = run("bit")
    assert word[3] > 0                     # fused batches replayed
    assert (word[0] == bit[0]).all()
    assert word[1] == bit[1]
    assert word[2] == bit[2]
