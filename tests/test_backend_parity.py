"""Cross-backend parity: fast word backend == bit engine == golden model.

Property-style sweep over random (n_bits, n_digits, faults, fr_checks)
configurations.  The two functional backends must agree *bit for bit* --
including raw counter-row images and including seeded fault injection,
because the word backend consumes the exact same FaultModel random
stream as the per-bit reference.  Fault-free runs must additionally
match the golden :class:`~repro.core.counter.CounterArray` arithmetic.
"""

import numpy as np
import pytest

from repro.core.counter import CounterArray
from repro.dram.faults import FAULT_FREE, FaultModel
from repro.engine import BankCluster, CountingEngine
from repro.kernels.gemv import binary_gemv, ternary_gemv

# (n_bits, n_digits, p_cim, p_read, fr_checks, stream_seed)
CONFIGS = [
    (1, 5, 0.0, 0.0, 0, 0),
    (2, 5, 0.0, 0.0, 0, 1),
    (3, 3, 0.0, 0.0, 0, 2),
    (2, 4, 0.0, 0.0, 2, 3),
    (2, 5, 5e-3, 0.0, 0, 4),
    (1, 6, 2e-2, 0.0, 0, 5),
    (2, 4, 1e-2, 1e-3, 0, 6),
    (2, 4, 5e-3, 0.0, 2, 7),
    (3, 3, 1e-2, 0.0, 0, 8),
]


def _run_stream(backend, n_bits, n_digits, p_cim, p_read, fr_checks,
                stream_seed, n_lanes=24, n_updates=12):
    """Replay one seeded (value, mask) stream; return values + raw rows."""
    fault_model = (FAULT_FREE if p_cim == 0 and p_read == 0
                   else FaultModel(p_cim=p_cim, p_read=p_read, seed=1000))
    eng = CountingEngine(n_bits, n_digits, n_lanes,
                         fault_model=fault_model, fr_checks=fr_checks,
                         backend=backend)
    eng.reset_counters()
    rng = np.random.default_rng(stream_seed)
    capacity = (2 * n_bits) ** n_digits
    budget = capacity - 1
    for _ in range(n_updates):
        value = int(rng.integers(1, max(2, budget // (n_updates + 1))))
        mask = rng.integers(0, 2, n_lanes).astype(np.uint8)
        eng.load_mask(0, mask)
        eng.accumulate(value)
    return eng.read_values(strict=False), eng.export_counters()


def _golden_stream(n_bits, n_digits, stream_seed, n_lanes=24,
                   n_updates=12):
    golden = CounterArray(n_bits, n_digits, n_lanes)
    rng = np.random.default_rng(stream_seed)
    capacity = (2 * n_bits) ** n_digits
    budget = capacity - 1
    for _ in range(n_updates):
        value = int(rng.integers(1, max(2, budget // (n_updates + 1))))
        mask = rng.integers(0, 2, n_lanes).astype(np.uint8)
        golden.add_value(value, mask=mask)
    return np.array(golden.totals(), dtype=np.int64)


@pytest.mark.parametrize(
    "n_bits,n_digits,p_cim,p_read,fr_checks,stream_seed", CONFIGS)
def test_word_backend_is_bit_identical(n_bits, n_digits, p_cim, p_read,
                                       fr_checks, stream_seed):
    vals_bit, rows_bit = _run_stream("bit", n_bits, n_digits, p_cim,
                                     p_read, fr_checks, stream_seed)
    vals_word, rows_word = _run_stream("word", n_bits, n_digits, p_cim,
                                       p_read, fr_checks, stream_seed)
    assert (vals_bit == vals_word).all()
    # Stronger than value equality: the raw counter-row images match.
    assert (rows_bit == rows_word).all()
    if p_cim == 0 and p_read == 0:
        golden = _golden_stream(n_bits, n_digits, stream_seed)
        assert (vals_word == golden).all()


def test_cluster_matches_reference_sums(rng):
    """Batched dispatch == plain masked accumulation arithmetic."""
    cluster = BankCluster(n_bits=2, n_digits=5, lanes_per_bank=16,
                          n_banks=3)
    updates = []
    ref = np.zeros(16, dtype=np.int64)
    for _ in range(20):
        value = int(rng.integers(0, 12))
        mask = rng.integers(0, 2, 16).astype(np.uint8)
        updates.append((value, mask))
        ref += value * mask.astype(np.int64)
    cluster.dispatch(updates)
    assert (cluster.read_reduced() == ref).all()
    # Per-bank partials are consistent with the reduction.
    assert (cluster.read_bank_values().sum(axis=0) == ref).all()


@pytest.mark.parametrize("seed", [0, 1])
def test_gemv_backends_agree_fault_free(seed):
    rng = np.random.default_rng(seed)
    x = rng.integers(-9, 10, 20)
    z = rng.integers(-1, 2, (20, 33)).astype(np.int8)
    exact = x @ z
    assert (ternary_gemv(x, z, backend="fast") == exact).all()
    assert (ternary_gemv(x, z, backend="bit") == exact).all()
    xb = np.abs(x)
    zb = (z == 1).astype(np.uint8)
    assert (binary_gemv(xb, zb, backend="fast") == xb @ zb).all()
    assert (binary_gemv(xb, zb, backend="bit") == xb @ zb).all()


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        CountingEngine(2, 3, 4, backend="quantum")
