"""Ablation: CIM technology backend (Sec. 4.6).

The counting mechanism ports to any functionally complete bulk-bitwise
substrate; op costs differ: Pinatubo-style AND/OR/NOT NVMs need 3n+4
ops per step, Ambit 7n+7, NOR-only MAGIC ~6n+5.
"""

import numpy as np

from repro.core.iarm import IARMScheduler
from repro.core.opcount import (AMBIT, MAGIC, PINATUBO,
                                digits_for_capacity, mean_ops_per_value)

from conftest import run_once


def _sweep():
    rng = np.random.default_rng(12)
    sample = rng.integers(0, 256, 2000)
    digits = digits_for_capacity(2, 2 ** 64)
    return {backend: mean_ops_per_value(IARMScheduler, sample, 2,
                                        digits, backend=backend)
            for backend in (AMBIT, PINATUBO, MAGIC)}


def test_ablation_backend(benchmark):
    ops = run_once(benchmark, _sweep)
    print()
    for backend, per_input in ops.items():
        print(f"  {backend:9s}: {per_input:6.1f} ops/input")
    # Pinatubo's 3-ops-per-bit primitive is the cheapest; MAGIC's
    # NOR-only expansion lands between Pinatubo and Ambit.
    assert ops[PINATUBO] < ops[MAGIC] < ops[AMBIT]
