"""Microbenchmarks of the library's core primitives.

Unlike the figure benches (which regenerate paper content once), these
measure the actual simulation throughput of the building blocks -- useful
for tracking regressions in the hot paths.
"""

import numpy as np
import pytest

from repro.core import CounterArray, IARMScheduler
from repro.core.johnson import encode_lanes, step
from repro.dram import AmbitSubarray, CommandScheduler
from repro.engine import CountingEngine
from repro.isa.templates import kary_increment_program


@pytest.fixture
def lanes():
    rng = np.random.default_rng(0)
    return encode_lanes(rng.integers(0, 10, 4096), 5)


def test_bench_kary_step_4096_lanes(benchmark, lanes):
    """Vectorized golden-model k-ary step over 4096 lanes."""
    mask = np.ones(4096, dtype=np.uint8)
    out = benchmark(step, lanes, 7, mask)
    assert out.shape == lanes.shape


def test_bench_gate_level_increment(benchmark):
    """One full μProgram increment on a 1024-lane Ambit subarray."""
    sa = AmbitSubarray(16, 1024)
    prog = kary_increment_program([0, 1, 2, 3, 4], 5, 3,
                                  [7, 8, 9, 10, 11], 6)

    def run():
        prog.run(sa)
        return sa.aap_count

    assert benchmark(run) > 0


def test_bench_iarm_scheduling(benchmark):
    """Scheduling 1000 uniform 8-bit inputs (host-side IARM)."""
    rng = np.random.default_rng(1)
    values = rng.integers(0, 256, 1000)

    def run():
        sched = IARMScheduler(2, 32)
        return sum(len(sched.schedule_value(int(v))) for v in values)

    assert benchmark(run) > 1000


def test_bench_counter_array_accumulate(benchmark):
    """Golden-model masked accumulation, 256 lanes x 100 values."""
    rng = np.random.default_rng(2)
    values = rng.integers(0, 200, 100)
    masks = rng.integers(0, 2, (100, 256)).astype(bool)

    def run():
        ca = CounterArray(2, 10, 256)
        for v, m in zip(values, masks):
            ca.add_value(int(v), mask=m)
        return ca.totals()[0]

    benchmark(run)


def test_bench_engine_accumulate(benchmark):
    """Gate-level engine: one masked accumulate on 512 lanes."""
    eng = CountingEngine(n_bits=2, n_digits=6, n_lanes=512)
    eng.load_mask(0, np.ones(512, dtype=np.uint8))

    def run():
        eng.reset_counters()
        eng.accumulate(45)
        return eng.measured_ops

    assert benchmark(run) > 0


def test_bench_command_scheduler(benchmark):
    """Event-driven replay of 10k AAPs over 16 banks."""
    sched = CommandScheduler()
    makespan = benchmark(sched.issue_aaps, 10_000, 16)
    assert makespan > 0
