"""Dedup tenancy harness: content-addressed row-image sharing.

Measures the two headline numbers of the row-image store
(:mod:`repro.serve.rowstore`):

* **Tenancy multiplier** -- how many same-base tenants fit one
  accounted bank budget that holds exactly one privately planted
  model.  Private planting of a second tenant must raise
  :class:`~repro.serve.pool.PoolExhausted`; through the store, every
  tenant attaches to the first tenant's engine body for free, so the
  multiplier equals the tenant count (asserted, and every tenant's
  answers are asserted bit-exact against numpy).
* **Registration latency** -- wall-clock cost of registering a model
  whose row image is already planted (a dedup hit: digest + attach)
  vs. the first tenant (full mask derivation + planting), as a
  speedup ratio.

Both land in ``BENCH_dedup.json`` (repo root + ``benchmarks/results/``
via the single-writer ``write_bench_document``) for the non-gating
dedup-smoke CI job and the perf-trajectory collector.
"""

import time

import numpy as np

from repro.device import Device
from repro.serve import BankPool, PoolExhausted
from repro.serve.registry import ModelRegistry

from conftest import run_once, write_bench_document

K, N = 48, 192
TENANTS = 8
REG_REPEATS = 5


def _experiment():
    rng = np.random.default_rng(20260807)
    z = rng.integers(-1, 2, (K, N)).astype(np.int8)
    xs = rng.integers(-6, 7, (TENANTS, K))

    # Budget sized to exactly one resident plan's single-query banks.
    probe_pool = BankPool(1 << 20)
    with Device(pool=probe_pool, backend="fast") as probe_dev:
        probe = probe_dev.plan_gemv(z, kind="ternary")
        probe(xs[0])
        budget = probe.leased_banks
    assert budget >= 1

    # Private planting: per-device stores over one shared bounded
    # pool -- the second tenant cannot build engines.
    pool = BankPool(budget)
    devs = [Device(pool=pool, backend="fast") for _ in range(2)]
    plans = [d.plan_gemv(z, kind="ternary") for d in devs]
    plans[0](xs[0])
    try:
        plans[1](xs[1])
        private_fits_two = True
    except PoolExhausted:
        private_fits_two = False
    for d in devs:
        d.close()
    assert not private_fits_two, (
        "budget sized for one plan unexpectedly fit a second private "
        "tenant; the tenancy multiplier below would be meaningless")

    # Shared store: TENANTS tenants through one registry on the same
    # budget, each answering bit-exactly.
    pool = BankPool(budget)
    dev = Device(pool=pool, backend="fast")
    reg = ModelRegistry(dev)
    t_first = time.perf_counter()
    reg.register("tenant0", z, kind="ternary")
    t_first = time.perf_counter() - t_first
    for t in range(1, TENANTS):
        reg.register(f"tenant{t}", z, kind="ternary")
    for t in range(TENANTS):
        y = reg.run(f"tenant{t}", lambda p, x=xs[t]: p(x))
        np.testing.assert_array_equal(y, xs[t] @ z)
    snap = pool.snapshot()
    store = dev.store.stats()
    assert snap.banks_leased <= budget
    assert store.dedup_hits == TENANTS - 1

    # Dedup-hit registration latency: same-digest registrations into a
    # warm registry (digest + handle + bookkeeping, no planting).
    t_hits = []
    for r in range(REG_REPEATS):
        t0 = time.perf_counter()
        reg.register(f"extra{r}", z, kind="ternary")
        t_hits.append(time.perf_counter() - t0)
    t_hit = min(t_hits)
    reg.close()

    return {
        "budget_banks": budget,
        "tenants": TENANTS,
        "tenancy_multiplier": snap.dedup_ratio,
        "banks_shared": snap.banks_shared,
        "dedup_hits": store.dedup_hits,
        "first_registration_ms": t_first * 1e3,
        "dedup_registration_ms": t_hit * 1e3,
        "registration_speedup": t_first / max(t_hit, 1e-9),
    }


def test_dedup_tenancy(benchmark):
    t0 = time.perf_counter()
    row = run_once(benchmark, _experiment)
    seconds = time.perf_counter() - t0

    # The acceptance gate: all TENANTS same-base models served out of
    # a budget the private path exhausts at two.
    assert row["tenancy_multiplier"] >= TENANTS
    assert row["dedup_hits"] >= TENANTS - 1

    write_bench_document(
        "dedup",
        f"Row-image dedup tenancy: {TENANTS} same-base {K}x{N} ternary "
        f"tenants in a {row['budget_banks']}-bank budget",
        [row],
        notes=(
            "tenancy_multiplier = effective/actual bank occupancy "
            "(PoolSnapshot.dedup_ratio) after serving every tenant",
            "private planting of tenant #2 raises PoolExhausted on "
            "the same budget (asserted)",
            "every tenant's answers asserted bit-exact against numpy",
            "dedup_registration_ms = best-of-%d same-digest "
            "registration (digest + attach, no planting)" % REG_REPEATS,
        ),
        seconds=seconds)

    print("\nDedup tenancy: %d tenants on a %d-bank budget, "
          "multiplier %.1fx, registration %.2f ms -> %.2f ms "
          "(%.1fx faster on dedup hits)" % (
              row["tenants"], row["budget_banks"],
              row["tenancy_multiplier"], row["first_registration_ms"],
              row["dedup_registration_ms"],
              row["registration_speedup"]))
