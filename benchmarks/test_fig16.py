"""Bench: regenerate Fig. 16 (sparsity sweep and GPU crossovers)."""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig16(benchmark, record_result):
    result = run_once(benchmark,
                      lambda: run_experiment("fig16", quick=True))
    record_result(result)
    v0 = [r for r in result.rows if r["workload"] == "V0"]
    m0 = [r for r in result.rows if r["workload"] == "M0"]
    # Zero-skipping: C2M latency falls monotonically with sparsity.
    lat = [r["C2M_ms"] for r in v0]
    assert lat == sorted(lat, reverse=True)
    # GEMV crossover happens inside the sweep; GEMM only at the extreme.
    assert any(r["C2M_ms"] < r["GPU_ms"] for r in v0)
    dense_m0 = m0[0]
    assert dense_m0["C2M_ms"] > dense_m0["GPU_ms"]
