"""Ablation: FR-check count (Tab. 1's knob) -- overhead vs residual error.

More FR repetitions buy error-rate decades linearly in op count; this
bench prints the latency/error frontier at fault rate 1e-4 so the r = 2
default's position is visible.
"""

from repro.apps.workloads import LLAMA_SHAPES
from repro.ecc import protected_error_rate
from repro.perf import C2MConfig, C2MModel

from conftest import run_once

FAULT_RATE = 1e-4


def _sweep():
    shape = LLAMA_SHAPES["V0"]
    rows = []
    for r in (0, 2, 4, 6):
        cfg = C2MConfig(banks=16, fr_checks=r, fault_rate=FAULT_RATE)
        cost = C2MModel(cfg).cost(shape)
        rows.append({
            "fr_checks": r,
            "latency_ms": cost.latency_ms,
            "residual_error": (None if r == 0
                               else protected_error_rate(FAULT_RATE, r)),
        })
    return rows


def test_ablation_protection(benchmark):
    rows = run_once(benchmark, _sweep)
    base = rows[0]["latency_ms"]
    print()
    for r in rows:
        err = ("raw faults" if r["residual_error"] is None
               else f"err={r['residual_error']:.1e}")
        print(f"  r={r['fr_checks']}: {r['latency_ms']:8.2f} ms "
              f"({r['latency_ms'] / base:4.2f}x)  {err}")
    lat = [r["latency_ms"] for r in rows]
    assert lat == sorted(lat)                  # monotone cost...
    errs = [r["residual_error"] for r in rows[1:]]
    assert errs == sorted(errs, reverse=True)  # ...for monotone safety
    # The r=2 default costs ~2.4x and already reaches 1.5e-12.
    assert rows[1]["latency_ms"] / base < 2.6
