"""Plan amortization harness: resident-Z sessions vs cold kernel calls.

Pins the Device/Plan acceptance criterion -- >= 5x amortized speedup on
>= 32 repeated ternary GEMV queries against one resident 64x256 Z on the
fast backend, *including* the one-time planting cost -- and records the
measured trajectory under ``benchmarks/results/plan_amortization.txt``.

Alongside the timing, the run pins bit-exactness: ``plan(x)``, the
one-shot kernel and the golden :class:`~repro.core.counter.CounterArray`
agree on every query, on both the word and the per-bit backend.
"""

import pathlib
import time

import numpy as np

from repro.core.counter import CounterArray
from repro.device import Device
from repro.kernels import required_digits, ternary_gemv

from conftest import run_once

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

K, N, QUERIES = 64, 256, 32


def _operands():
    rng = np.random.default_rng(20260730)
    z = rng.integers(-1, 2, (K, N)).astype(np.int8)
    xs = rng.integers(-8, 9, (QUERIES, K))
    return xs, z


def _golden(x, z):
    """Two golden CounterArrays, input sign folded into the mask."""
    digits = required_digits(2, x)
    pos = CounterArray(2, digits, N)
    neg = CounterArray(2, digits, N)
    plus = (z == 1).astype(np.uint8)
    minus = (z == -1).astype(np.uint8)
    for i in range(K):
        if x[i] == 0:
            continue
        up, down = ((plus[i], minus[i]) if x[i] > 0
                    else (minus[i], plus[i]))
        if up.any():
            pos.add_value(int(abs(x[i])), mask=up)
        if down.any():
            neg.add_value(int(abs(x[i])), mask=down)
    return (np.array(pos.totals(), dtype=np.int64)
            - np.array(neg.totals(), dtype=np.int64))


def test_plan_amortization(benchmark):
    xs, z = _operands()
    exact = xs @ z

    def cold_pass():
        # Cold: one kernel call per query -- plant, compile, run, drop.
        t0 = time.perf_counter()
        cold = np.stack([ternary_gemv(x, z) for x in xs])
        return time.perf_counter() - t0, cold

    def plan_pass():
        # Amortized: plant once, stream every query through one plan.
        # A fresh device per pass keeps the planting cost inside the
        # measurement.
        t0 = time.perf_counter()
        with Device(n_bits=2) as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            warm = plan.run_many(xs)
            stats = plan.stats
        return time.perf_counter() - t0, warm, stats

    def measure(repeats=3):
        # Best-of-N on both sides: these are ms-scale functional sims,
        # so a single noisy-neighbor scheduling blip would otherwise
        # dominate the ratio.
        t_cold, cold = min((cold_pass() for _ in range(repeats)),
                           key=lambda r: r[0])
        t_plan, warm, stats = min((plan_pass() for _ in range(repeats)),
                                  key=lambda r: r[0])
        return t_cold, t_plan, cold, warm, stats

    t_cold, t_plan, cold, warm, stats = run_once(benchmark, measure)

    # Bit-exact agreement: plan == one-shot kernel == numpy == golden,
    # on both backends (golden/bit checks on a query subsample keep the
    # harness second-scale).
    assert (cold == exact).all()
    assert (warm == exact).all()
    for q in (0, 7, 19):
        assert (_golden(xs[q], z) == exact[q]).all()
        assert (ternary_gemv(xs[q], z, backend="bit") == exact[q]).all()
        with Device(backend="bit") as dev:
            bit_plan = dev.plan_gemv(z, kind="ternary")
            assert (bit_plan(xs[q]) == exact[q]).all()

    speedup = t_cold / t_plan
    text = "\n".join([
        f"Plan amortization: {QUERIES} repeated ternary GEMV queries, "
        f"one resident {K}x{N} Z (fast backend)",
        f"  cold kernel calls : {t_cold * 1e3:8.2f} ms "
        f"({t_cold / QUERIES * 1e3:6.2f} ms/query)",
        f"  plan once + stream: {t_plan * 1e3:8.2f} ms "
        f"({t_plan / QUERIES * 1e3:6.2f} ms/query, planting included)",
        f"  amortized speedup : {speedup:8.1f} x",
        f"  broadcasts        : {stats.broadcasts} for {stats.queries} "
        f"queries ({stats.broadcasts / stats.queries:.1f}/query)",
        f"  uProgram cache    : {stats.program_compiles} compiled, "
        f"{stats.program_replays} replayed",
        f"  resident rows     : {stats.resident_rows} "
        f"(both sign orientations of {K} Z rows)",
        "  bit-exact         : plan == one-shot kernel == golden "
        "CounterArray (fast and bit backends)",
    ])
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "plan_amortization.txt").write_text(text + "\n")
    print("\n" + text)

    assert speedup >= 5.0, (
        f"plan reuse only {speedup:.1f}x over cold kernel calls")
