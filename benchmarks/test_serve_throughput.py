"""Serving throughput harness: coalesced waves vs sequential queries.

Pins the `repro.serve` acceptance criterion -- concurrent same-model
submissions coalesced into shared ``run_many()`` waves beat the same
traffic issued as sequential single-query ``plan(x)`` calls (>= 2x on
32 queries against one resident 64x256 ternary Z, planting included on
both sides) -- and records the measured trajectory plus the per-query
telemetry under ``benchmarks/results/serve_throughput.txt``.

Alongside the timing, the run pins bit-exactness (both sides equal
``xs @ z``) and the telemetry contract: every response's modeled
latency/energy derives from the wave's *measured* op delta through
``time_for_aaps_ns`` / ``EnergyModel`` (asserted against a direct
recomputation).
"""

import pathlib
import time

import numpy as np

from repro.device import Device
from repro.dram.energy import DDR5_ENERGY
from repro.dram.timing import time_for_aaps_ns
from repro.serve import Server

from conftest import run_once

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

K, N, QUERIES = 64, 256, 32


def _operands():
    rng = np.random.default_rng(20260730)
    z = rng.integers(-1, 2, (K, N)).astype(np.int8)
    xs = rng.integers(-8, 9, (QUERIES, K))
    return xs, z


def test_serve_throughput(benchmark):
    xs, z = _operands()
    exact = xs @ z

    def sequential_pass():
        # Sequential: a resident plan answers one query at a time --
        # the best a client without the batching scheduler can do.
        t0 = time.perf_counter()
        with Device(n_bits=2) as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            ys = np.stack([plan(x) for x in xs])
        return time.perf_counter() - t0, ys

    def coalesced_pass():
        # Coalesced: the same burst submitted concurrently; the server
        # scheduler folds it into shared run_many() waves.  A fresh
        # server per pass keeps planting inside the measurement.
        t0 = time.perf_counter()
        with Server(n_bits=2) as srv:
            srv.register("m", z, kind="ternary")
            futures = srv.submit_many("m", xs)
            responses = [f.result() for f in futures]
            stats = srv.stats
        ys = np.stack([r.y for r in responses])
        return time.perf_counter() - t0, ys, responses, stats

    def measure(repeats=3):
        # Best-of-N on both sides: ms-scale functional sims, so one
        # noisy-neighbor blip would otherwise dominate the ratio.
        t_seq, seq = min((sequential_pass() for _ in range(repeats)),
                         key=lambda r: r[0])
        t_srv, srv, responses, stats = min(
            (coalesced_pass() for _ in range(repeats)),
            key=lambda r: r[0])
        return t_seq, t_srv, seq, srv, responses, stats

    t_seq, t_srv, seq, srv, responses, stats = run_once(benchmark, measure)

    # Bit-exact on both paths.
    assert (seq == exact).all()
    assert (srv == exact).all()

    # Telemetry contract: latency/energy derive from measured ops.
    rep = responses[0].report
    assert rep.measured_ops > 0
    assert abs(rep.latency_ns
               - time_for_aaps_ns(rep.measured_ops, rep.n_banks)) < 1e-6
    expected_energy = DDR5_ENERGY.energy_for_aaps_j(
        rep.measured_ops, rep.latency_ns * 1e-9)
    assert abs(rep.energy_j - expected_energy) < 1e-15
    waves = {(r.report.batch_size, r.report.measured_ops)
             for r in responses}
    total_queries = sum(b for b, _ in waves)
    assert total_queries == QUERIES

    speedup = t_seq / t_srv
    text = "\n".join([
        f"Serve throughput: {QUERIES} concurrent ternary GEMV queries, "
        f"one registered {K}x{N} model (fast backend)",
        f"  sequential plan(x) calls : {t_seq * 1e3:8.2f} ms "
        f"({t_seq / QUERIES * 1e3:6.2f} ms/query)",
        f"  coalesced server waves   : {t_srv * 1e3:8.2f} ms "
        f"({t_srv / QUERIES * 1e3:6.2f} ms/query, planting included)",
        f"  coalescing speedup       : {speedup:8.1f} x",
        f"  scheduler                : {stats.queries} queries in "
        f"{stats.waves} wave(s), largest wave {stats.max_wave}",
        f"  modeled wave latency     : {rep.latency_ns / 1e3:8.1f} us "
        f"from {rep.measured_ops} measured AAP/APs over "
        f"{rep.n_banks} banks",
        f"  modeled wave energy      : {rep.energy_j * 1e6:8.2f} uJ "
        f"({rep.query_energy_j * 1e6:.2f} uJ/query attributed)",
        "  bit-exact                : sequential == coalesced == numpy",
        "  telemetry                : latency/energy recomputed from "
        "measured_ops via time_for_aaps_ns/EnergyModel (asserted)",
    ])
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serve_throughput.txt").write_text(text + "\n")
    print("\n" + text)

    assert speedup >= 2.0, (
        f"coalesced serving only {speedup:.1f}x over sequential calls")
