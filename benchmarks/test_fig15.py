"""Bench: regenerate Fig. 15 (bank-level parallelism scaling)."""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig15(benchmark, record_result):
    result = run_once(benchmark,
                      lambda: run_experiment("fig15", quick=True))
    record_result(result)
    for row in result.rows:
        # 1 -> 4 banks overlaps AAPs ~4x; 4 -> 16 hits the FAW wall.
        assert row["C2M:1_ms"] / row["C2M:4_ms"] > 3.5
        assert 1.2 < row["C2M:4_ms"] / row["C2M:16_ms"] < 4.5
        # C2M never loses to SIMDRAM at matched bank counts.
        for b in (1, 4, 16):
            assert row[f"C2M:{b}_ms"] < row[f"SIMDRAM:{b}_ms"]
