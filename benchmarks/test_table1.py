"""Bench: regenerate Table 1 (protection error/detect rates, op counts)."""

from repro.experiments import run_experiment

from conftest import run_once


def test_table1(benchmark, record_result):
    result = run_once(benchmark,
                      lambda: run_experiment("table1", quick=True))
    record_result(result)
    assert len(result.rows) == 9                    # 3 FR rows x 3 rates
    for row in result.rows:
        # Within 10% of the paper on live cells; the floored corner is
        # bounded by the 1e-20 read-fault assumption.
        ratio = row["error_rate"] / row["paper_error"]
        assert 0.9 < ratio < 1.6
        ratio = row["detect_rate"] / row["paper_detect"]
        assert 0.9 < ratio < 1.1
