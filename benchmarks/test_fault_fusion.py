"""Fault-fusion harness: fused fault-trace replay vs per-op injection.

The paper's evaluation *is* its fault campaigns (Secs. 6-7, Figs.
14-19), and until this PR exactly those runs were the ones locked out
of the compiled-trace fast path.  This harness pins the new
acceptance criterion -- >= 2x fused over interpreted on a seeded
fig-14-style fault sweep (a resident ternary GEMV plan streaming
signed queries under a p_cim/p_read/margin grid) -- with the fused
side asserted bit-exact, counter-exact and *injected-stream*-exact
against the interpreted path, and records the trajectory under
``benchmarks/results/`` plus the machine-readable
``BENCH_fault_fusion.json`` (mirrored to the repo root).
"""

import contextlib
import pathlib
import time

import numpy as np

from repro.device import Device
from repro.dram.faults import FaultModel
from repro.isa.trace import fusion_disabled

from conftest import run_once

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

K, N, QUERIES = 48, 128, 4
MAG = 200           # per-element magnitude bound of the query stream
PASSES = 3          # timed passes per mode (identical seeded streams)

#: The seeded sweep: (p_cim, p_read, margin_aware) grid points
#: covering all three read-rate regimes of ``FaultModel.corrupt``.
SWEEP = [
    (1e-2, 0.0, True),          # margin-aware, contested-only flips
    (1e-2, 1e-3, True),         # two-draw margin-aware selection
    (1e-2, 1e-2, True),         # p_read == p_cim: selection off
    (1e-1, 1e-2, False),        # margin-unaware high-rate point
]


def _operands():
    rng = np.random.default_rng(20260731)
    z = rng.integers(-1, 2, (K, N)).astype(np.int8)
    xs = rng.integers(-MAG, MAG + 1, (QUERIES, K))
    return xs, z


def _run_point(fused, p_cim, p_read, margin_aware, xs, z, budget):
    """One seeded plan lifetime: warm both runs of every program, then
    time PASSES full query streams.  Same seed on both modes, so the
    fault streams -- and therefore the outputs -- must match exactly."""
    fault_model = FaultModel(p_cim=p_cim, p_read=p_read,
                             margin_aware=margin_aware, seed=1234)
    ctx = contextlib.nullcontext() if fused else fusion_disabled()
    outs = []
    with ctx, Device(n_bits=2, fault_model=fault_model,
                     n_banks=2) as dev:
        plan = dev.plan_gemv(z, kind="ternary", x_budget=budget)
        for x in xs:                   # plant + warm past the JIT
            outs.append(plan(x))       # threshold (run 1 interprets,
            outs.append(plan(x))       # run 2 compiles)
        t0 = time.perf_counter()
        for _ in range(PASSES):
            for x in xs:
                outs.append(plan(x))
        elapsed = time.perf_counter() - t0
        stats = plan.stats
    return elapsed, np.stack(outs), stats


def test_fault_fusion(benchmark, record_bench_json):
    xs, z = _operands()
    budget = int(np.abs(xs).sum(axis=1).max())

    def measure():
        rows, total_f, total_i = [], 0.0, 0.0
        for p_cim, p_read, margin_aware in SWEEP:
            t_f, y_f, s_f = _run_point(True, p_cim, p_read,
                                       margin_aware, xs, z, budget)
            t_i, y_i, s_i = _run_point(False, p_cim, p_read,
                                       margin_aware, xs, z, budget)
            # Parity is the whole game: same seed => identical outputs
            # (every pass, warm-up included), identical command stream
            # and identical injected-fault totals on both paths.
            assert (y_f == y_i).all()
            assert s_f.measured_ops == s_i.measured_ops
            assert s_f.broadcasts == s_i.broadcasts
            assert s_f.injected_faults == s_i.injected_faults
            assert s_f.injected_faults > 0
            assert s_f.trace_replays > 0       # fused path really fused
            assert s_i.trace_replays == 0      # bypass really bypassed
            total_f += t_f
            total_i += t_i
            rows.append({
                "p_cim": p_cim, "p_read": p_read,
                "margin_aware": margin_aware,
                "interp_ms": round(t_i * 1e3, 3),
                "fused_ms": round(t_f * 1e3, 3),
                "speedup": round(t_i / t_f, 2),
                "injected": int(s_f.injected_faults),
                "trace_replays": int(s_f.trace_replays),
            })
        return rows, total_f, total_i

    rows, total_f, total_i = run_once(benchmark, measure)
    speedup = total_i / total_f
    per_query_f = total_f / (len(SWEEP) * PASSES * QUERIES) * 1e3
    per_query_i = total_i / (len(SWEEP) * PASSES * QUERIES) * 1e3

    lines = [
        f"Fault fusion: {QUERIES} ternary GEMV queries (|x| <= {MAG}) "
        f"x {PASSES} passes per fault point, one resident {K}x{N} Z "
        f"(word backend, seeded FaultModel)",
        f"  interpreted injection : {total_i * 1e3:8.2f} ms "
        f"({per_query_i:6.2f} ms/query)",
        f"  fused fault replay    : {total_f * 1e3:8.2f} ms "
        f"({per_query_f:6.2f} ms/query)",
        f"  sweep speedup         : {speedup:8.2f} x",
    ]
    for row in rows:
        lines.append(
            f"  p_cim={row['p_cim']:g} p_read={row['p_read']:g} "
            f"margin={'on' if row['margin_aware'] else 'off'}: "
            f"{row['speedup']:.2f}x ({row['injected']} flips, "
            f"{row['trace_replays']} fused replays)")
    lines.append("  parity                : fused == interpreted "
                 "(outputs, ops, broadcasts, injected streams) "
                 "asserted per point")
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fault_fusion.txt").write_text(text + "\n")
    print("\n" + text)

    record_bench_json(
        "fault_fusion",
        f"Fused fault-trace replay vs per-op injection, resident "
        f"{K}x{N} ternary GEMV under a seeded fault sweep",
        rows=rows + [{
            "p_cim": "sweep", "p_read": "-", "margin_aware": "-",
            "interp_ms": round(total_i * 1e3, 3),
            "fused_ms": round(total_f * 1e3, 3),
            "speedup": round(speedup, 2),
            "injected": int(sum(r["injected"] for r in rows)),
            "trace_replays": int(sum(r["trace_replays"] for r in rows)),
        }],
        notes=["fused path asserted bit-, counter- and fault-stream-"
               "identical to the interpreted path per sweep point "
               "(cross-backend parity is pinned in "
               "tests/test_fault_fusion_parity.py)"],
        seconds=total_f + total_i)

    assert speedup >= 2.0, (
        f"fault fusion only {speedup:.2f}x over per-op injection")
