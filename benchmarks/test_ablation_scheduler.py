"""Ablation: carry-rippling policy (unit vs naive k-ary vs IARM).

The paper's two optimizations isolated at the kernel level: k-ary
increments (Sec. 4.5.1) and IARM (Sec. 4.5.2), each measured as V0 GEMV
latency against the unit-counting strawman.
"""

from repro.apps.workloads import LLAMA_SHAPES
from repro.perf import C2MConfig, C2MModel

from conftest import run_once


def _sweep():
    shape = LLAMA_SHAPES["V0"]
    out = {}
    for sched in ("unit", "kary", "iarm"):
        cost = C2MModel(C2MConfig(scheduler=sched, banks=16)).cost(shape)
        out[sched] = cost.latency_ms
    return out


def test_ablation_scheduler(benchmark):
    latency = run_once(benchmark, _sweep)
    print()
    for sched, ms in latency.items():
        print(f"  {sched:5s}: {ms:8.2f} ms "
              f"({latency['unit'] / ms:4.1f}x vs unit)")
    assert latency["iarm"] < latency["kary"] < latency["unit"]
    # IARM's headline: the rippling cost all but disappears.
    assert latency["unit"] / latency["iarm"] > 3.0
