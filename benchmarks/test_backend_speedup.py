"""Fast-backend speedup harness: word-parallel cluster vs per-bit path.

Pins the tentpole acceptance criterion -- >= 10x functional-simulation
throughput on a 64x256 ternary GEMV -- and records the measured
throughput under ``benchmarks/results/backend_speedup.txt`` so future
PRs have a trajectory to improve on.  Outputs must be bit-identical:

* fault-free: both paths compute the exact integer product;
* faulty: the word backend replays the per-bit backend's command stream
  and fault stream exactly (same seeded :class:`FaultModel` draws), so
  even corrupted counter images match bit for bit.
"""

import pathlib
import time

import numpy as np

from repro.dram.faults import FaultModel
from repro.engine.machine import CountingEngine
from repro.kernels.gemv import ternary_gemv

from conftest import run_once

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

K, N = 64, 256


def _operands():
    rng = np.random.default_rng(1234)
    x = rng.integers(-8, 9, K)
    z = rng.integers(-1, 2, (K, N)).astype(np.int8)
    return x, z


def _timed(fn, repeats=3):
    """Best-of-N wall time (these are ms-scale functional sims)."""
    best, result = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, result


def _faulty_engine_run(backend):
    """One seeded faulty accumulation run; returns (values, raw rows)."""
    fm = FaultModel(p_cim=5e-3, seed=99)
    eng = CountingEngine(n_bits=2, n_digits=5, n_lanes=64,
                        fault_model=fm, backend=backend)
    eng.reset_counters()
    rng = np.random.default_rng(7)
    for _ in range(12):
        eng.load_mask(0, rng.integers(0, 2, 64).astype(np.uint8))
        eng.accumulate(int(rng.integers(1, 50)))
    return eng.read_values(strict=False), eng.export_counters()


def test_backend_speedup(benchmark):
    x, z = _operands()
    exact = x @ z

    def measure():
        t_bit, y_bit = _timed(lambda: ternary_gemv(x, z, backend="bit"))
        t_fast, y_fast = _timed(lambda: ternary_gemv(x, z, backend="fast"))
        return t_bit, t_fast, y_bit, y_fast

    t_bit, t_fast, y_bit, y_fast = run_once(benchmark, measure)

    # Bit-identical outputs, fault-free.
    assert (y_bit == exact).all()
    assert (y_fast == exact).all()

    # Bit-identical outputs (and raw counter rows) under faults.
    vals_bit, rows_bit = _faulty_engine_run("bit")
    vals_fast, rows_fast = _faulty_engine_run("word")
    assert (vals_bit == vals_fast).all()
    assert (rows_bit == rows_fast).all()

    speedup = t_bit / t_fast
    macs = K * N
    text = "\n".join([
        "Backend speedup: 64x256 ternary GEMV (functional simulation)",
        f"  per-bit path : {t_bit * 1e3:8.2f} ms "
        f"({macs / t_bit:12.0f} MAC/s)",
        f"  fast backend : {t_fast * 1e3:8.2f} ms "
        f"({macs / t_fast:12.0f} MAC/s)",
        f"  speedup      : {speedup:8.1f} x",
    ])
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "backend_speedup.txt").write_text(text + "\n")
    print("\n" + text)

    assert speedup >= 10.0, (
        f"fast backend only {speedup:.1f}x over the per-bit path")
