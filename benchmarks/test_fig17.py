"""Bench: regenerate Fig. 17 accuracy under faults (see DESIGN.md §3 for the experiment index)."""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig17(benchmark, record_result):
    result = run_once(benchmark,
                      lambda: run_experiment("fig17", quick=True))
    record_result(result)
    assert result.rows, "experiment produced no data"
