"""Bench: regenerate Fig. 3 input distributions (see DESIGN.md §3 for the experiment index)."""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig03(benchmark, record_result):
    result = run_once(benchmark,
                      lambda: run_experiment("fig03", quick=True))
    record_result(result)
    assert result.rows, "experiment produced no data"
