"""Megatrace harness: whole-sequence stitched replay, batch-axis serve.

Pins the PR's performance contract and records it as
``BENCH_megatrace.json`` (root-mirrored for the perf-trajectory
collector):

* **Plan steady state** -- a warm plan streaming a repeated query set
  executes each query as a handful of stitched megatrace replays
  (``megatrace_replays`` per pass bounded by the wave count) instead of
  hundreds of per-uProgram trace replays, with *zero* compiles of any
  kind per steady-state pass, and beats the interpreted path >= 2x.
* **Coalesced serve** -- a warm coalesced burst through the
  :class:`~repro.serve.Server` batch axis (one stacked ``run_many``
  wave riding megatraces) beats the same traffic as sequential
  ``plan(x)`` calls >= 2x.
* **Campaign** -- a fault-injection campaign whose trials ride the
  stitched path matches the per-uProgram path's injected accounting
  exactly and beats the interpreted campaign >= 2x.

Every regime comparison reruns the *identical* workload under
``megatrace_disabled()`` / ``fusion_disabled()``, so the before/after
compile and replay counters in the JSON are measured, not modeled.
"""

import contextlib
import pathlib
import time

import numpy as np

from repro.device import Device
from repro.isa.trace import fusion_disabled, megatrace_disabled
from repro.reliability import Campaign, FaultPoint
from repro.serve import Server

from conftest import run_once

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

K, N, QUERIES = 64, 256, 16
PASSES = 4
WARM = 3           # pass 1 per-wave, pass 2 stitches, pass 3 replays

REGIMES = [("megatrace", contextlib.nullcontext),
           ("per-uprogram", megatrace_disabled),
           ("interpreted", fusion_disabled)]


def _operands():
    rng = np.random.default_rng(20260807)
    z = rng.integers(-1, 2, (K, N)).astype(np.int8)
    xs = rng.integers(-8, 9, (QUERIES, K))
    return xs, z


def _plan_steady_state(xs, z, ctx):
    """Warm a plan on the repeated query stream, then time pure passes."""
    with ctx():
        with Device(n_bits=2) as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            for _ in range(WARM):
                for x in xs:
                    plan(x)
            before = plan.stats
            t0 = time.perf_counter()
            for _ in range(PASSES):
                for x in xs:
                    plan(x)
            elapsed = time.perf_counter() - t0
            after = plan.stats
    return {
        "ms_per_pass": elapsed / PASSES * 1e3,
        "trace_compiles": after.trace_compiles,
        "trace_replays_per_pass":
            (after.trace_replays - before.trace_replays) // PASSES,
        "megatrace_compiles": after.megatrace_compiles,
        "megatrace_compiles_steady":
            after.megatrace_compiles - before.megatrace_compiles,
        "megatrace_replays_per_pass":
            (after.megatrace_replays - before.megatrace_replays) // PASSES,
        "waves_per_pass":
            (after.broadcasts - before.broadcasts) // PASSES,
    }


def _serve_bursts(xs, z, ctx):
    """Warm a server on the burst, then time coalesced waves."""
    with ctx():
        with Server(n_bits=2) as srv:
            srv.register("m", z, kind="ternary")
            for _ in range(WARM):
                [f.result() for f in srv.submit_many("m", xs)]
            best = None
            for _ in range(3):
                t0 = time.perf_counter()
                for _ in range(PASSES):
                    rs = [f.result() for f in srv.submit_many("m", xs)]
                t = (time.perf_counter() - t0) / PASSES
                best = t if best is None else min(best, t)
            report = rs[0].report
    return {"ms_per_burst": best * 1e3,
            "megatrace_replays": report.megatrace_replays,
            "trace_replays": report.trace_replays}


def _sequential_warm(xs, z):
    """The no-batch baseline: warm plan, one query at a time."""
    with Device(n_bits=2) as dev:
        plan = dev.plan_gemv(z, kind="ternary")
        for _ in range(WARM):
            for x in xs:
                plan(x)
        best = None
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(PASSES):
                for x in xs:
                    plan(x)
            t = (time.perf_counter() - t0) / PASSES
            best = t if best is None else min(best, t)
    return best * 1e3


def _campaign(xs, z, ctx):
    """Repeated-query faulted campaign: trials ride the stitched path."""
    reps = np.repeat(xs[:1], 6, axis=0)
    with ctx():
        t0 = time.perf_counter()
        campaign = Campaign(z=z, xs=reps, kind="ternary",
                            banks_per_trial=2)
        result = campaign.run([FaultPoint(p_cim=1e-3)], n_trials=4)
        elapsed = time.perf_counter() - t0
    row = result.rows[0]
    return {"ms": elapsed * 1e3, "injected": row["injected"],
            "trace_replays": row["trace_replays"],
            "megatrace_replays": row["megatrace_replays"]}


def test_megatrace(benchmark, record_bench_json):
    xs, z = _operands()

    def measure():
        plan = {name: _plan_steady_state(xs, z, ctx)
                for name, ctx in REGIMES}
        serve = {name: _serve_bursts(xs, z, ctx)
                 for name, ctx in REGIMES}
        seq_ms = _sequential_warm(xs, z)
        camp = {name: _campaign(xs, z, ctx) for name, ctx in REGIMES}
        return plan, serve, seq_ms, camp

    t0 = time.perf_counter()
    plan, serve, seq_ms, camp = run_once(benchmark, measure)
    seconds = time.perf_counter() - t0

    mega, plain, interp = (plan[n] for n, _ in REGIMES)
    # Steady state is *pure replay*: no compiles of any kind per pass,
    # and the whole pass is a handful of stitched replays bounded by
    # the wave count (vs hundreds of per-uProgram replays before).
    assert mega["megatrace_compiles_steady"] == 0
    assert 0 < mega["megatrace_replays_per_pass"] <= mega["waves_per_pass"]
    assert mega["trace_replays_per_pass"] < plain["trace_replays_per_pass"]
    assert plain["megatrace_replays_per_pass"] == 0
    plan_speedup = interp["ms_per_pass"] / mega["ms_per_pass"]
    assert plan_speedup >= 2.0, (
        f"megatrace plan passes only {plan_speedup:.2f}x over interpreted")

    serve_speedup = seq_ms / serve["megatrace"]["ms_per_burst"]
    assert serve["megatrace"]["megatrace_replays"] > 0
    assert serve_speedup >= 2.0, (
        f"coalesced megatrace serve only {serve_speedup:.2f}x over "
        f"sequential queries")

    camp_speedup = camp["interpreted"]["ms"] / camp["megatrace"]["ms"]
    assert camp["megatrace"]["megatrace_replays"] > 0
    assert camp["megatrace"]["injected"] == camp["interpreted"]["injected"]
    assert camp["megatrace"]["injected"] == camp["per-uprogram"]["injected"]
    assert camp_speedup >= 2.0, (
        f"megatrace campaign only {camp_speedup:.2f}x over interpreted")

    rows = []
    for name, _ in REGIMES:
        rows.append({"workload": "plan_steady_state", "regime": name,
                     **{k: round(v, 3) if isinstance(v, float) else v
                        for k, v in plan[name].items()}})
    for name, _ in REGIMES:
        rows.append({"workload": "serve_coalesced", "regime": name,
                     **{k: round(v, 3) if isinstance(v, float) else v
                        for k, v in serve[name].items()}})
    rows.append({"workload": "serve_sequential", "regime": "per-uprogram",
                 "ms_per_burst": round(seq_ms, 3)})
    for name, _ in REGIMES:
        rows.append({"workload": "campaign", "regime": name,
                     **{k: round(v, 3) if isinstance(v, float) else v
                        for k, v in camp[name].items()}})
    rows.append({"workload": "speedups", "regime": "megatrace",
                 "plan_vs_interpreted": round(plan_speedup, 2),
                 "serve_vs_sequential": round(serve_speedup, 2),
                 "campaign_vs_interpreted": round(camp_speedup, 2)})
    record_bench_json(
        "megatrace",
        "Whole-sequence megatrace replay: plan / serve / campaign",
        rows,
        notes=[
            f"{QUERIES} ternary {K}x{N} queries; warm={WARM} passes "
            f"(pass 1 per-wave, pass 2 stitches, pass 3+ replay)",
            "steady-state megatrace passes perform zero compiles; "
            "replays bounded by wave count",
            "identical workloads rerun under megatrace_disabled / "
            "fusion_disabled for the before/after counters",
        ],
        seconds=seconds)

    text = "\n".join([
        f"Megatrace steady state ({QUERIES} queries, {K}x{N} ternary):",
        f"  megatrace   : {mega['ms_per_pass']:7.2f} ms/pass  "
        f"{mega['megatrace_replays_per_pass']} stitched replays "
        f"({mega['waves_per_pass']} waves), "
        f"{mega['trace_replays_per_pass']} uProgram replays",
        f"  per-uProgram: {plain['ms_per_pass']:7.2f} ms/pass  "
        f"{plain['trace_replays_per_pass']} uProgram replays",
        f"  interpreted : {interp['ms_per_pass']:7.2f} ms/pass "
        f"({plan_speedup:.2f}x slower than megatrace)",
        f"Coalesced serve: {serve['megatrace']['ms_per_burst']:7.2f} "
        f"ms/burst vs {seq_ms:7.2f} ms sequential "
        f"({serve_speedup:.2f}x)",
        f"Campaign: {camp['megatrace']['ms']:7.1f} ms vs "
        f"{camp['interpreted']['ms']:7.1f} ms interpreted "
        f"({camp_speedup:.2f}x), injected identical across paths",
    ])
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "megatrace.txt").write_text(text + "\n")
    print("\n" + text)
