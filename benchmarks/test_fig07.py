"""Bench: regenerate Fig. 7 transition patterns (see DESIGN.md §3 for the experiment index)."""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig07(benchmark, record_result):
    result = run_once(benchmark,
                      lambda: run_experiment("fig07", quick=True))
    record_result(result)
    assert result.rows, "experiment produced no data"
