"""Bench: regenerate Fig. 19 counter capacity (see DESIGN.md §3 for the experiment index)."""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig19(benchmark, record_result):
    result = run_once(benchmark,
                      lambda: run_experiment("fig19", quick=True))
    record_result(result)
    assert result.rows, "experiment produced no data"
