"""Bench: regenerate Fig. 9 IARM walkthrough (see DESIGN.md §3 for the experiment index)."""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig09(benchmark, record_result):
    result = run_once(benchmark,
                      lambda: run_experiment("fig09", quick=True))
    record_result(result)
    assert result.rows, "experiment produced no data"
