"""Bench: regenerate Fig. 4 fault-rate motivation (see DESIGN.md §3 for the experiment index)."""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig04(benchmark, record_result):
    result = run_once(benchmark,
                      lambda: run_experiment("fig04", quick=True))
    record_result(result)
    assert result.rows, "experiment produced no data"
