"""Trace-fusion harness: compiled μProgram replay vs per-op interpretation.

Pins the trace-compiler acceptance criterion -- >= 3x on the
resident-plan ternary GEMV hot loop (one planted 64x256 Z on the word
backend, a stream of deep-accumulation queries against it) with the
fused path bit-exact *and counter-exact* against the interpreted word
path and the per-bit reference -- and records the measured trajectory
under ``benchmarks/results/trace_fusion.txt`` plus the machine-readable
``BENCH_trace_fusion.json``.

The workload streams single queries with magnitudes up to ~500: each
broadcast then schedules a multi-digit event batch, which is exactly
the regime the paper's Secs. 5.1-5.2 throughput story lives in (long
broadcast command streams, thousands of lanes) and where per-op Python
interpretation used to bound the simulator.
"""

import pathlib
import time

import numpy as np

from repro.device import Device
from repro.isa.trace import fusion_disabled

from conftest import run_once

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

K, N, QUERIES = 64, 256, 6
MAG = 500          # per-element magnitude bound of the query stream


def _operands():
    rng = np.random.default_rng(20260730)
    z = rng.integers(-1, 2, (K, N)).astype(np.int8)
    xs = rng.integers(-MAG, MAG + 1, (QUERIES, K))
    return xs, z


def _timed_pass(plan, xs, repeats=3):
    """Best-of-N wall time for one full query stream against the plan."""
    best, ys = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        ys = np.stack([plan(x) for x in xs])
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, ys


def test_trace_fusion(benchmark, record_bench_json):
    xs, z = _operands()
    exact = xs @ z
    budget = int(np.abs(xs).sum(axis=1).max())

    def measure():
        with Device(n_bits=2) as dev:
            plan = dev.plan_gemv(z, kind="ternary", x_budget=budget)
            for x in xs:                   # plant + warm past the JIT
                plan(x)                    # threshold, compiling every
                plan(x)                    # hot trace
            stats0 = plan.stats
            t_fused, ys_fused = _timed_pass(plan, xs)
            stats1 = plan.stats
            with fusion_disabled():
                for x in xs:               # warm the interpreted path
                    plan(x)
                stats2 = plan.stats
                t_interp, ys_interp = _timed_pass(plan, xs)
                stats3 = plan.stats
            return (t_fused, t_interp, ys_fused, ys_interp,
                    stats0, stats1, stats2, stats3)

    (t_fused, t_interp, ys_fused, ys_interp,
     s0, s1, s2, s3) = run_once(benchmark, measure)

    # Bit-exact: fused == interpreted == numpy, and == the per-bit
    # reference backend on a query subsample (it is ~100x slower).
    assert (ys_fused == exact).all()
    assert (ys_interp == exact).all()
    with Device(backend="bit") as dev:
        bit_plan = dev.plan_gemv(z, kind="ternary", x_budget=budget)
        assert (bit_plan(xs[0]) == exact[0]).all()

    # Counter-exact: the fused passes issued exactly the command stream
    # the interpreted passes did (each side ran `repeats` identical
    # passes, so per-pass deltas compare directly).
    ops_fused = (s1.measured_ops - s0.measured_ops) // 3
    ops_interp = (s3.measured_ops - s2.measured_ops) // 3
    assert ops_fused == ops_interp
    assert (s1.broadcasts - s0.broadcasts) == (s3.broadcasts
                                              - s2.broadcasts)
    assert s1.trace_replays > s0.trace_replays        # fused path ran
    assert s3.trace_replays == s2.trace_replays       # bypassed cleanly

    speedup = t_interp / t_fused
    per_query_f = t_fused / QUERIES * 1e3
    per_query_i = t_interp / QUERIES * 1e3
    text = "\n".join([
        f"Trace fusion: {QUERIES} deep ternary GEMV queries "
        f"(|x| <= {MAG}), one resident {K}x{N} Z (word backend)",
        f"  interpreted per-op : {t_interp * 1e3:8.2f} ms "
        f"({per_query_i:6.2f} ms/query)",
        f"  fused trace replay : {t_fused * 1e3:8.2f} ms "
        f"({per_query_f:6.2f} ms/query)",
        f"  speedup            : {speedup:8.1f} x",
        f"  command stream     : {ops_fused} AAP/AP per pass "
        f"(identical on both paths, asserted)",
        f"  trace cache        : {s1.trace_compiles} compiled, "
        f"{(s1.trace_replays - s0.trace_replays) // 3} replayed/pass",
        "  bit-exact          : fused == interpreted == numpy == "
        "bit backend",
    ])
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "trace_fusion.txt").write_text(text + "\n")
    print("\n" + text)

    record_bench_json(
        "trace_fusion",
        f"Fused trace replay vs per-op interpretation, resident "
        f"{K}x{N} ternary GEMV",
        rows=[{
            "queries": QUERIES, "k": K, "n": N, "max_mag": MAG,
            "interp_ms": round(t_interp * 1e3, 3),
            "fused_ms": round(t_fused * 1e3, 3),
            "speedup": round(speedup, 2),
            "ops_per_pass": int(ops_fused),
            "trace_compiles": int(s1.trace_compiles),
            "trace_replays_per_pass":
                int((s1.trace_replays - s0.trace_replays) // 3),
        }],
        notes=["fused path asserted bit-exact and counter-exact "
               "against the interpreted word path and the bit backend"],
        seconds=t_fused + t_interp)

    assert speedup >= 3.0, (
        f"trace fusion only {speedup:.1f}x over the interpreted path")
