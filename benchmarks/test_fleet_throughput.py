"""Fleet throughput harness: sharded workers vs one in-process server.

Open-loop, skewed-popularity serving benchmark: a fixed pre-generated
query schedule over several resident ternary models (popularity ~
1/rank, so a hot tenant dominates) is submitted as fast as the front
door admits it -- no client-side pacing -- against (a) the
single-process :class:`~repro.serve.Server` baseline and (b) a
:class:`~repro.fleet.Fleet` at 2 and 4 shards.  Every configuration
records wall-clock throughput plus client-observed p50/p99/mean
latency (aggregated through the same
:class:`~repro.serve.telemetry.LatencySummary` code path the runtime
telemetry uses) into ``BENCH_fleet.json`` via the single-writer
``record_bench_json``.

Bit-exactness of every configuration against ``xs @ z`` is asserted
unconditionally.  The throughput acceptance gate -- the 4-shard fleet
beats the single-process baseline -- needs real parallel hardware, so
it is asserted when the host has >= 2 CPUs and recorded (with a
``cpu_limited`` note) otherwise: on a single core, worker processes
can only timeshare and the fleet pays IPC for no parallelism.
"""

import os
import time

import numpy as np

from repro.fleet import Fleet
from repro.serve import Server
from repro.serve.telemetry import LatencySummary

from conftest import run_once

K, N = 48, 192
N_MODELS = 6
QUERIES = 180
SHARD_COUNTS = (2, 4)


def _workload():
    rng = np.random.default_rng(20260807)
    zs = {f"m{i}": rng.integers(-1, 2, (K, N)).astype(np.int8)
          for i in range(N_MODELS)}
    # Skewed popularity: model rank r draws traffic ~ 1/(r+1).
    weights = np.array([1.0 / (r + 1) for r in range(N_MODELS)])
    weights /= weights.sum()
    schedule = rng.choice(sorted(zs), size=QUERIES, p=weights)
    xs = rng.integers(-6, 7, (QUERIES, K))
    return zs, schedule, xs


def _drive(submit, schedule, xs):
    """Open-loop pass: submit everything, then observe completions.

    Returns (wall seconds, client-observed latencies in ns, results).
    Completion times come from done-callbacks, so the latency of query
    i never includes the time spent waiting on query j's ``result()``.
    """
    done = [0.0] * len(schedule)
    t0 = time.perf_counter()
    starts, futures = [], []
    for i, (model, x) in enumerate(zip(schedule, xs)):
        starts.append(time.perf_counter())
        fut = submit(model, x)
        fut.add_done_callback(
            lambda f, i=i: done.__setitem__(i, time.perf_counter()))
        futures.append(fut)
    results = [f.result() for f in futures]
    wall = time.perf_counter() - t0
    lat_ns = [(d - s) * 1e9 for s, d in zip(starts, done)]
    return wall, lat_ns, results


def _row(config, shards, wall, lat_ns):
    lat = LatencySummary.from_ns(lat_ns)
    return {
        "config": config,
        "shards": shards,
        "queries": len(lat_ns),
        "wall_ms": round(wall * 1e3, 2),
        "qps": round(len(lat_ns) / wall, 1),
        "p50_ms": round(lat.p50_ns / 1e6, 3),
        "p99_ms": round(lat.p99_ns / 1e6, 3),
        "mean_ms": round(lat.mean_ns / 1e6, 3),
    }


def test_fleet_throughput(benchmark, record_bench_json):
    zs, schedule, xs = _workload()

    def server_pass():
        with Server(n_bits=2, pool_banks=32) as srv:
            for name, z in zs.items():
                srv.register(name, z, kind="ternary")
            for name in zs:                       # warm planting
                srv.query(name, np.zeros(K, dtype=np.int64))
            wall, lat_ns, results = _drive(srv.submit, schedule, xs)
        return wall, lat_ns, [r.y for r in results]

    def fleet_pass(n_shards):
        with Fleet(n_shards=n_shards, n_bits=2, pool_banks=32,
                   max_queue=QUERIES + 1) as fleet:
            for name, z in zs.items():
                fleet.register(name, z, kind="ternary")
            for name in zs:                       # warm planting
                fleet.query(name, np.zeros(K, dtype=np.int64))
            wall, lat_ns, results = _drive(fleet.submit, schedule, xs)
        return wall, lat_ns, [r.y for r in results]

    def measure():
        out = {"server": server_pass()}
        for n in SHARD_COUNTS:
            out[f"fleet-{n}"] = fleet_pass(n)
        return out

    out = run_once(benchmark, measure)

    # Bit-exactness everywhere, before any throughput claims.
    for config, (_, _, ys) in out.items():
        for i, (model, y) in enumerate(zip(schedule, ys)):
            want = xs[i] @ zs[model].astype(np.int64)
            assert (y == want).all(), f"{config} diverged at query {i}"

    rows = [_row("server", 1, out["server"][0], out["server"][1])]
    rows += [_row(f"fleet-{n}", n, out[f"fleet-{n}"][0],
                  out[f"fleet-{n}"][1]) for n in SHARD_COUNTS]

    cpus = os.cpu_count() or 1
    notes = [
        f"open loop, skewed popularity (~1/rank over {N_MODELS} "
        f"ternary {K}x{N} models), {QUERIES} queries, host cpus={cpus}",
        "latency is client-observed submit->resolve wall clock, "
        "aggregated via LatencySummary (the runtime telemetry path)",
    ]
    gate = cpus >= 2
    if not gate:
        notes.append("cpu_limited: single-core host, 4-shard-beats-"
                     "server gate recorded but not asserted")
    record_bench_json("fleet", "Fleet vs single-process serve "
                      "throughput (open loop, skewed popularity)",
                      rows, notes=notes)

    qps = {row["config"]: row["qps"] for row in rows}
    print("\n" + "\n".join(
        f"  {row['config']:>8}: {row['qps']:8.1f} q/s   "
        f"p50 {row['p50_ms']:7.3f} ms   p99 {row['p99_ms']:7.3f} ms"
        for row in rows))
    if gate:
        assert qps["fleet-4"] > qps["server"], (
            f"4-shard fleet ({qps['fleet-4']} q/s) did not beat the "
            f"single-process server ({qps['server']} q/s)")
