"""Ablation: all-bank activation (Sec. 7.2.2) on a wide-output workload.

One broadcast command drives the same μProgram in every bank, so outputs
wider than one subarray row (the DNA filter's millions of bins) execute
their column tiles in lockstep -- trading power for throughput, as the
paper's all-bank discussion describes.
"""

from repro.apps.workloads import layer_inventory
from repro.perf import C2MConfig, C2MModel

from conftest import run_once


def _sweep():
    dna = layer_inventory("DNA filt")[0]
    rows = []
    for all_bank in (False, True):
        cost = C2MModel(C2MConfig(banks=16,
                                  all_bank=all_bank)).cost(dna.shape)
        rows.append({"mode": "all-bank" if all_bank else "per-bank",
                     "latency_ms": cost.latency_ms,
                     "power_w": cost.power_w,
                     "gops": cost.gops})
    return rows


def test_ablation_allbank(benchmark):
    rows = run_once(benchmark, _sweep)
    per_bank, all_bank = rows
    print()
    for r in rows:
        print(f"  {r['mode']:9s}: {r['latency_ms']:12.1f} ms, "
              f"{r['power_w']:6.2f} W, {r['gops']:8.1f} GOPS")
    # 69 column tiles: broadcast wins on time, loses on power.
    assert all_bank["latency_ms"] < per_bank["latency_ms"]
    assert all_bank["power_w"] > per_bank["power_w"]
