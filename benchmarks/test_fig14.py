"""Bench: regenerate Fig. 14 (GPU-normalized throughput/Watt/mm²)."""

from repro.experiments import run_experiment
from repro.util import geometric_mean

from conftest import run_once


def test_fig14(benchmark, record_result):
    result = run_once(benchmark,
                      lambda: run_experiment("fig14", quick=True))
    record_result(result)
    assert len(result.rows) == 10                   # V0-V4, M0-M4
    # Paper headline band: C2M leads SIMDRAM on every efficiency metric.
    ratios = [row["C2M/GPU_gops_per_W"] / row["SIMDRAM/GPU_gops_per_W"]
              for row in result.rows]
    geo = geometric_mean(ratios)
    assert 2.0 < geo < 12.0, f"GOPS/W advantage {geo:.1f}x out of band"
    # GPU retains the raw-throughput crown on dense GEMM workloads.
    for row in result.rows:
        if row["workload"].startswith("M"):
            assert row["C2M/GPU_gops"] < 1.0
