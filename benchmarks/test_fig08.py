"""Bench: regenerate Fig. 8 (op-count sweep across radices)."""

from repro.experiments import run_experiment

from conftest import run_once


def test_fig08(benchmark, record_result):
    result = run_once(benchmark,
                      lambda: run_experiment("fig08", quick=True))
    record_result(result)
    jc_rows = [r for r in result.rows if r["radix"] != "RCA"]
    rca = next(r for r in result.rows if r["radix"] == "RCA")
    # IARM's curve is capacity-invariant and beats everything at its
    # radix 4-8 sweet spot (the paper's Fig. 8b conclusion).
    best_iarm = min(r["iarm"] for r in jc_rows)
    assert best_iarm < rca["kary_i16"]
    for r in jc_rows:
        assert r["iarm"] <= r["kary_i16"] + 1e-9
