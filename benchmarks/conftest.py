"""Benchmark harness: every bench regenerates one paper table/figure.

Each benchmark runs its experiment through pytest-benchmark (one round --
these are reproduction harnesses, not microbenchmarks), prints the
regenerated table for the log, and archives it under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Persist a rendered experiment table and echo it to stdout."""
    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        name = result.experiment_id.lower().replace(". ", "").replace(
            " ", "_")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
        return result
    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
