"""Benchmark harness: every bench regenerates one paper table/figure.

Each benchmark runs its experiment through pytest-benchmark (one round --
these are reproduction harnesses, not microbenchmarks), prints the
regenerated table for the log, and archives it under
``benchmarks/results/`` for EXPERIMENTS.md.  Performance-trajectory
benches additionally archive a machine-readable ``BENCH_<name>.json``
(same document shape as ``repro.experiments.runner --json``) so CI can
track the numbers across PRs without parsing tables.
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
#: The repo-root perf-trajectory collector scans for ``BENCH_*.json``
#: at the repository root, so every benchmark document is mirrored
#: there as well as archived under ``benchmarks/results/``.
REPO_ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture
def record_result():
    """Persist a rendered experiment table and echo it to stdout."""
    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        name = result.experiment_id.lower().replace(". ", "").replace(
            " ", "_")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
        return result
    return _record


def write_bench_document(name, title, rows, notes=(), seconds=None):
    """THE single writer of ``BENCH_<name>.json`` records.

    Builds the document once in memory (runner ``--json`` shape:
    ``{"experiments": [{experiment_id, title, rows, notes, name,
    seconds}]}`` with native-Python row values) and serializes that
    one record to both locations -- ``benchmarks/results/`` (the
    archive) and the repo root (what the perf-trajectory collector
    scans) -- via atomic replace.  Both copies come from the same
    bytes by construction, so they can never drift; no benchmark
    should ever write a ``BENCH_*.json`` through any other path.
    """
    def _native(value):
        return value.item() if hasattr(value, "item") else value
    document = {"experiments": [{
        "experiment_id": f"BENCH_{name}",
        "title": title,
        "rows": [{k: _native(v) for k, v in row.items()}
                 for row in rows],
        "notes": list(notes),
        "name": name,
        "seconds": (None if seconds is None
                    else round(float(seconds), 3)),
    }]}
    text = json.dumps(document, indent=2) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    for target in (path, REPO_ROOT / f"BENCH_{name}.json"):
        tmp = target.with_suffix(".json.tmp")
        tmp.write_text(text)
        tmp.replace(target)
    return path


@pytest.fixture
def record_bench_json():
    """Persist a benchmark as ``BENCH_<name>.json`` (runner ``--json`` shape).

    Thin fixture wrapper over :func:`write_bench_document`, the single
    writer that mirrors one in-memory record to ``benchmarks/results/``
    and the repo root.
    """
    return write_bench_document


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
