"""Benchmark harness: every bench regenerates one paper table/figure.

Each benchmark runs its experiment through pytest-benchmark (one round --
these are reproduction harnesses, not microbenchmarks), prints the
regenerated table for the log, and archives it under
``benchmarks/results/`` for EXPERIMENTS.md.  Performance-trajectory
benches additionally archive a machine-readable ``BENCH_<name>.json``
(same document shape as ``repro.experiments.runner --json``) so CI can
track the numbers across PRs without parsing tables.
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
#: The repo-root perf-trajectory collector scans for ``BENCH_*.json``
#: at the repository root, so every benchmark document is mirrored
#: there as well as archived under ``benchmarks/results/``.
REPO_ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture
def record_result():
    """Persist a rendered experiment table and echo it to stdout."""
    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        name = result.experiment_id.lower().replace(". ", "").replace(
            " ", "_")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
        return result
    return _record


@pytest.fixture
def record_bench_json():
    """Persist a benchmark as ``BENCH_<name>.json`` (runner ``--json`` shape).

    The document mirrors what ``python -m repro.experiments.runner
    <exp> --json`` emits -- ``{"experiments": [{experiment_id, title,
    rows, notes, name, seconds}]}`` with native-Python row values -- so
    the CI smoke jobs and any tooling that already consumes runner
    output can track benchmark trajectories the same way.  Each
    document lands in ``benchmarks/results/`` *and* is mirrored to a
    root-level ``BENCH_<name>.json`` -- the repo-root perf-trajectory
    collector only scans the root, so results-dir-only records would
    leave the trajectory empty.
    """
    def _record(name, title, rows, notes=(), seconds=None):
        def _native(value):
            return value.item() if hasattr(value, "item") else value
        document = {"experiments": [{
            "experiment_id": f"BENCH_{name}",
            "title": title,
            "rows": [{k: _native(v) for k, v in row.items()}
                     for row in rows],
            "notes": list(notes),
            "name": name,
            "seconds": (None if seconds is None
                        else round(float(seconds), 3)),
        }]}
        text = json.dumps(document, indent=2) + "\n"
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(text)
        (REPO_ROOT / f"BENCH_{name}.json").write_text(text)
        return path
    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
