"""Analytics throughput: keys/sec through the counting-engine kernels.

Streams warm histogram and group-by batches through
:mod:`repro.apps.analytics` plans on both engine backends and records
keys-per-second for the fused (megatrace) and interpreted regimes into
``BENCH_analytics.json`` (root-mirrored for the perf-trajectory
collector).  The same document carries a radix-sort end-to-end rate.
Every fused/interpreted pair reruns the identical key stream under
``fusion_disabled()``, so the speedup column is measured, not modeled.
"""

import contextlib
import time

import numpy as np

from repro.device import Device
from repro.isa.trace import fusion_disabled

from conftest import run_once

N_QUERIES, QUERY_LEN, N_BUCKETS, N_GROUPS = 6, 64, 8, 4
PASSES = 4
WARM = 3           # pass 1 per-wave, pass 2 stitches, pass 3 replays

REGIMES = [("fused", contextlib.nullcontext),
           ("interpreted", fusion_disabled)]
BACKENDS = ("fast", "bit")


def _key_streams():
    rng = np.random.default_rng(20260807)
    keys = rng.integers(0, N_BUCKETS, size=(N_QUERIES, QUERY_LEN))
    recs = np.stack([np.stack([rng.integers(0, N_GROUPS, QUERY_LEN),
                               rng.integers(-9, 10, QUERY_LEN)], axis=1)
                     for _ in range(N_QUERIES)])
    return keys, recs


def _stream_rate(backend, ctx, plan_of, batch):
    """Warm a plan on the repeated batch, then time pure passes."""
    with ctx():
        with Device(backend=backend) as dev:
            plan = plan_of(dev)
            for _ in range(WARM):
                plan.run_many(batch)
            before = plan.stats
            t0 = time.perf_counter()
            for _ in range(PASSES):
                plan.run_many(batch)
            elapsed = time.perf_counter() - t0
            after = plan.stats
    n_keys = batch.shape[0] * batch.shape[1] * PASSES
    return {
        "keys_per_s": n_keys / elapsed,
        "measured_ops_per_pass":
            (after.measured_ops - before.measured_ops) // PASSES,
        "megatrace_replays_per_pass":
            (after.megatrace_replays - before.megatrace_replays) // PASSES,
    }


def _sweep():
    keys, recs = _key_streams()
    rows = []
    for workload, plan_of, batch in [
        ("histogram",
         lambda dev: dev.plan_histogram(n_buckets=N_BUCKETS,
                                        query_len=QUERY_LEN), keys),
        ("groupby-sum",
         lambda dev: dev.plan_groupby(N_GROUPS, agg="sum",
                                      query_len=QUERY_LEN), recs),
    ]:
        for backend in BACKENDS:
            for regime, ctx in REGIMES:
                r = _stream_rate(backend, ctx, plan_of, batch)
                rows.append({"workload": workload, "backend": backend,
                             "regime": regime, **r})
    return rows


def _sort_rate():
    from repro.apps.analytics import radix_sort
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 1 << 8, size=512)
    t0 = time.perf_counter()
    out = radix_sort(keys, radix_bits=4)
    elapsed = time.perf_counter() - t0
    assert (out == np.sort(keys)).all()
    return {"workload": "radix-sort(r=4)", "backend": "fast",
            "regime": "fused", "keys_per_s": keys.size / elapsed,
            "measured_ops_per_pass": None,
            "megatrace_replays_per_pass": None}


def test_analytics_throughput(benchmark, record_bench_json):
    rows = run_once(benchmark, _sweep)
    rows.append(_sort_rate())
    print()
    for r in rows:
        print(f"  {r['workload']:>12s} {r['backend']:>4s} "
              f"{r['regime']:>11s}: {r['keys_per_s']:10.0f} keys/s")

    def rate(workload, backend, regime):
        return next(r["keys_per_s"] for r in rows
                    if (r["workload"], r["backend"], r["regime"]) ==
                    (workload, backend, regime))

    notes = []
    for workload in ("histogram", "groupby-sum"):
        # The word backend dominates the bit-serial reference ...
        assert rate(workload, "fast", "fused") > \
            5 * rate(workload, "bit", "fused")
        # ... and the fused regime beats interpreting uProgram-by-
        # uProgram on the word backend (warm stream, megatraces replay).
        speedup = (rate(workload, "fast", "fused") /
                   rate(workload, "fast", "interpreted"))
        assert speedup > 1.0, speedup
        notes.append(f"{workload}: fused/interpreted = {speedup:.2f}x "
                     f"on the word backend")
    record_bench_json("analytics",
                      "Analytics keys/sec (fused vs interpreted)",
                      rows, notes=notes)
