"""Ablation: counter radix (the paper's radix-4 design choice).

Sweeps the Johnson digit width on the V0 GEMV and reports latency and
storage. Radix 4 pairs binary-equivalent storage density (Fig. 19) with
a near-minimal op count (Fig. 8b) -- this bench shows both sides of
that trade at the kernel level.  A second sweep measures the same knob
on a *data* kernel: end-to-end radix-sort throughput, where the counter
radix sets the bucket-histogram digit count per pass.
"""

import time

import numpy as np

from repro.apps.workloads import LLAMA_SHAPES
from repro.core.opcount import digits_for_capacity, jc_bits_required
from repro.perf import C2MConfig, C2MModel

from conftest import run_once


def _sweep():
    shape = LLAMA_SHAPES["V0"]
    rows = []
    for n_bits in (1, 2, 3, 4, 5, 8):
        cost = C2MModel(C2MConfig(n_bits=n_bits, banks=16)).cost(shape)
        rows.append({
            "radix": 2 * n_bits,
            "latency_ms": cost.latency_ms,
            "aaps": cost.aaps,
            "storage_bits_per_counter": jc_bits_required(
                2 * n_bits, 2 ** 64),
            "digits": digits_for_capacity(n_bits, 2 ** 64),
        })
    return rows


def test_ablation_radix(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    for r in rows:
        print(f"  radix {r['radix']:2d}: {r['latency_ms']:8.2f} ms, "
              f"{r['storage_bits_per_counter']:3d} bits/counter")
    by_radix = {r["radix"]: r for r in rows}
    # Radix 4: within 10% of the latency optimum at binary-equal storage.
    best = min(r["latency_ms"] for r in rows)
    assert by_radix[4]["latency_ms"] < 1.15 * best
    assert by_radix[4]["storage_bits_per_counter"] == 64
    # Very high radices pay in both storage and ops.
    assert by_radix[16]["latency_ms"] > by_radix[4]["latency_ms"]


def _sort_sweep():
    from repro.apps.analytics import radix_sort
    rng = np.random.default_rng(42)
    keys = rng.integers(0, 1 << 8, size=256)
    golden = np.sort(keys)
    rows = []
    for n_bits in (1, 2, 4):
        t0 = time.perf_counter()
        out = radix_sort(keys, radix_bits=4, n_bits=n_bits)
        elapsed = time.perf_counter() - t0
        assert (out == golden).all()
        rows.append({"radix": 2 * n_bits,
                     "keys_per_s": keys.size / elapsed})
    return rows


def test_ablation_radix_sort_throughput(benchmark):
    """The counter-radix knob through the end-to-end sort pipeline.

    Higher radix means fewer Johnson digits per bucket counter, so each
    histogram pass issues fewer carry waves -- throughput should not
    degrade as the radix grows from 2 to 8 on the same key stream.
    """
    rows = run_once(benchmark, _sort_sweep)
    print()
    for r in rows:
        print(f"  radix {r['radix']:2d}: {r['keys_per_s']:10.0f} keys/s")
    by_radix = {r["radix"]: r for r in rows}
    # Radix 2 carries the most digit waves per increment; the paper's
    # radix 4 should sort at least ~as fast (generous slack: timing
    # noise on sub-second runs).
    assert by_radix[4]["keys_per_s"] > 0.5 * by_radix[2]["keys_per_s"]
