"""Ablation: counter radix (the paper's radix-4 design choice).

Sweeps the Johnson digit width on the V0 GEMV and reports latency and
storage. Radix 4 pairs binary-equivalent storage density (Fig. 19) with
a near-minimal op count (Fig. 8b) -- this bench shows both sides of
that trade at the kernel level.
"""

from repro.apps.workloads import LLAMA_SHAPES
from repro.core.opcount import digits_for_capacity, jc_bits_required
from repro.perf import C2MConfig, C2MModel

from conftest import run_once


def _sweep():
    shape = LLAMA_SHAPES["V0"]
    rows = []
    for n_bits in (1, 2, 3, 4, 5, 8):
        cost = C2MModel(C2MConfig(n_bits=n_bits, banks=16)).cost(shape)
        rows.append({
            "radix": 2 * n_bits,
            "latency_ms": cost.latency_ms,
            "aaps": cost.aaps,
            "storage_bits_per_counter": jc_bits_required(
                2 * n_bits, 2 ** 64),
            "digits": digits_for_capacity(n_bits, 2 ** 64),
        })
    return rows


def test_ablation_radix(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    for r in rows:
        print(f"  radix {r['radix']:2d}: {r['latency_ms']:8.2f} ms, "
              f"{r['storage_bits_per_counter']:3d} bits/counter")
    by_radix = {r["radix"]: r for r in rows}
    # Radix 4: within 10% of the latency optimum at binary-equal storage.
    best = min(r["latency_ms"] for r in rows)
    assert by_radix[4]["latency_ms"] < 1.15 * best
    assert by_radix[4]["storage_bits_per_counter"] == 64
    # Very high radices pay in both storage and ops.
    assert by_radix[16]["latency_ms"] > by_radix[4]["latency_ms"]
